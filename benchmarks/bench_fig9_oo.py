"""Figure 9 — OO metric, large bucket, high network variation.

Shape criterion: "the OO metric (sampling interval is 2min) for large jobs
(bucket) under high network variation in case of Order Preserving scheduler
is greater than the Greedy scheduler" — Op's ordered-data availability
dominates Greedy's, integrated over a common horizon and averaged over
seeds.
"""

import numpy as np

from repro.experiments.config import HIGH_VARIATION_SPEC
from repro.experiments.figures import fig9_oo_metric
from repro.experiments.svg_plot import line_chart_svg


def test_fig9_oo_metric(benchmark, save_artifact):
    result = benchmark.pedantic(
        fig9_oo_metric, kwargs=dict(seed=43), rounds=1, iterations=1
    )
    save_artifact("fig9_oo_metric.txt", result.render())
    first = next(iter(result.series.values()))
    save_artifact("fig9_oo_metric.svg", line_chart_svg(
        first.times - first.times[0],
        {name: s.ordered_mb for name, s in result.series.items()},
        title="Fig 9 — ordered output availability (large, high variation)",
        x_label="time (s)", y_label="ordered MB",
    ))
    assert result.tolerance == 0
    assert result.sampling_interval == 120.0
    assert set(result.series) == {"Greedy", "Op"}


def _collect_fig9_areas():
    lines, op_areas, greedy_areas = [], [], []
    for seed in (42, 43, 44, 45, 46):
        r = fig9_oo_metric(spec=HIGH_VARIATION_SPEC, seed=seed)
        op_areas.append(r.areas["Op"])
        greedy_areas.append(r.areas["Greedy"])
        lines.append(
            f"seed {seed}: Op={r.areas['Op'] / 1e6:.3f} "
            f"Greedy={r.areas['Greedy'] / 1e6:.3f} MMB*s"
        )
    return lines, op_areas, greedy_areas


def test_fig9_op_dominates_greedy_over_seeds(benchmark, save_artifact):
    lines, op_areas, greedy_areas = benchmark.pedantic(
        _collect_fig9_areas, rounds=1, iterations=1
    )
    save_artifact("fig9_areas.txt", "\n".join(lines))
    assert np.mean(op_areas) > np.mean(greedy_areas)
