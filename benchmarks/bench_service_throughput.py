"""Broker serving throughput under open-loop heavy traffic.

Pushes >= 1e5 Poisson arrivals through the online broker
(quote -> admit -> dispatch per job against the virtual clock) at three
arrival rates spanning light load to deep overload, and records sustained
submission throughput plus quote-latency percentiles. The artifact lands
in ``benchmarks/results/service_throughput.txt``.

The 50/s and 200/s points run far above the testbed's service capacity
(~0.1 jobs/s on 8 IC machines), so they exercise the backpressure path:
most arrivals are rejected at the door, which is exactly the regime the
admission ladder exists for.
"""

from repro.experiments.config import DEFAULT_SPEC
from repro.experiments.runner import make_scheduler
from repro.metrics.tickets import ProportionalTicket
from repro.service import LoadGenConfig, SLAPolicy, run_load
from repro.sim.environment import CloudBurstEnvironment

#: (rate per simulated second, jobs to push). The middle point carries the
#: 1e5-job requirement; the flanks keep total wall time reasonable.
RATES = (
    (10.0, 20_000),
    (50.0, 100_000),
    (200.0, 20_000),
)


def _policy() -> SLAPolicy:
    return SLAPolicy(
        ticket=ProportionalTicket(base_s=300.0, factor=6.0),
        degraded_slack_s=-120.0,
        max_in_system=60,
    )


def _run_sweep() -> list:
    results = []
    for rate, n_jobs in RATES:
        env = CloudBurstEnvironment(DEFAULT_SPEC.system)
        scheduler = make_scheduler("Op", env)
        config = LoadGenConfig(n_jobs=n_jobs, rate_per_s=rate, seed=2024)
        results.append(run_load(env, scheduler, _policy(), config))
    return results


def test_service_throughput(benchmark, save_artifact):
    results = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)

    lines = ["broker serving throughput (scheduler Op, poisson arrivals)", ""]
    for result in results:
        lines.append(result.render())
        lines.append("")
    path = save_artifact("service_throughput.txt", "\n".join(lines).rstrip())
    assert path.exists()

    total_submitted = sum(r.n_submitted for r in results)
    assert total_submitted >= 100_000

    for result in results:
        # The broker must stay far ahead of every offered arrival rate —
        # otherwise "online" is aspirational — and quote tails must stay
        # interactive.
        assert result.jobs_per_s > 500
        assert result.latency_percentile_ms(99) < 50.0
        stats = result.stats
        assert stats.submitted == result.n_submitted
        assert stats.completed == stats.admitted

    # Backpressure pins admitted throughput near the testbed's service
    # capacity (~0.1 jobs per simulated second) no matter how hard the
    # arrival process pushes; the excess is refused at the door.
    for result in results:
        admitted_rate = result.stats.admitted / result.sim_horizon_s
        assert 0.03 < admitted_rate < 0.3
    # Comparing the equal-length runs, deeper overload rejects more.
    assert results[0].stats.rejection_rate < results[2].stats.rejection_rate
