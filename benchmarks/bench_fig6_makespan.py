"""Figure 6 — makespan comparison of the schedulers per workload bucket.

Shape criteria (Section V.B.1): "Cloudbursting improves the performance by
10 percent over IC-only scheduler" on the heavily loaded large bucket,
and "the makespan for the greedy and the order-preserving scheduler is
almost same".
"""

from repro.experiments.figures import fig6_makespan
from repro.experiments.svg_plot import bar_chart_svg


def test_fig6_makespan(benchmark, save_artifact):
    result = benchmark.pedantic(
        fig6_makespan, kwargs=dict(seeds=(42, 43, 44)), rounds=1, iterations=1
    )
    save_artifact("fig6_makespan.txt", result.render())
    labels, values = [], []
    for bucket in result.buckets:
        for sched in result.schedulers:
            labels.append(f"{bucket}/{sched}")
            values.append(result.makespans[bucket][sched])
    save_artifact("fig6_makespan.svg", bar_chart_svg(
        labels, values, title="Fig 6 — makespan by scheduler", x_label="seconds",
    ))
    gains = result.improvement_vs_ic
    # Bursting beats IC-only by roughly the paper's ~10% on the large bucket.
    assert 5.0 < gains["large"]["Greedy"] < 30.0
    assert 5.0 < gains["large"]["Op"] < 30.0
    # Greedy ~ Op.
    mk = result.makespans["large"]
    assert 0.9 < mk["Greedy"] / mk["Op"] < 1.1
    # Bursting never hurts on uniform either.
    assert gains["uniform"]["Op"] > 0.0
