"""Ablation — autonomic elastic EC scaling (Section V.B.4 future work).

Compares a statically over-provisioned EC pool (6 instances) against the
queue-driven autoscaler over the same workload. The paper's policy goal:
"the scaling (at EC) must be just enough to ensure saturation of the
download bandwidth" — i.e. pay for far fewer machine-seconds without
giving back the makespan.
"""

import numpy as np

from repro.experiments.config import ExperimentSpec
from repro.experiments.runner import build_workload, run_one
from repro.sim.autoscale import ECAutoScaler
from repro.sim.environment import SystemConfig
from repro.workload.distributions import Bucket

SPEC = ExperimentSpec(bucket=Bucket.LARGE, n_batches=5,
                      system=SystemConfig(seed=91, ec_machines=6))


def _run_matrix():
    rows = []
    for seed in (91, 92, 93):
        spec = SPEC.with_seed(seed)
        batches = build_workload(spec)
        static = run_one("Op", spec, batches=batches)
        scalers = []

        def hook(env):
            scalers.append(
                ECAutoScaler(env.sim, env.ec, min_instances=1,
                             max_instances=6, interval_s=60.0)
            )

        elastic = run_one("Op", spec, batches=batches, env_hook=hook)
        summary = scalers[0].summary()
        rows.append({
            "seed": seed,
            "static_mk": static.makespan,
            "elastic_mk": elastic.makespan,
            "static_cost": 6.0 * (static.end_time - static.arrival_time),
            "elastic_cost": summary["rented_machine_s"],
            "ups": summary["scale_ups"],
            "downs": summary["scale_downs"],
        })
    return rows


def test_ablation_autoscale(benchmark, save_artifact):
    rows = benchmark.pedantic(_run_matrix, rounds=1, iterations=1)
    lines = [
        f"seed={r['seed']} static mk={r['static_mk']:7.1f}s "
        f"cost={r['static_cost']:8.0f}ms | elastic mk={r['elastic_mk']:7.1f}s "
        f"cost={r['elastic_cost']:8.0f}ms (ups={r['ups']}, downs={r['downs']})"
        for r in rows
    ]
    save_artifact("ablation_autoscale.txt", "\n".join(lines))
    # At least 20% of the rented machine-seconds saved on average...
    saving = 1 - np.mean([r["elastic_cost"] for r in rows]) / np.mean(
        [r["static_cost"] for r in rows]
    )
    assert saving > 0.20
    # ...with makespan within 10% of the over-provisioned static pool.
    assert np.mean([r["elastic_mk"] for r in rows]) <= np.mean(
        [r["static_mk"] for r in rows]
    ) * 1.10
