"""Benchmark fixtures: artifact directory for rendered figures/tables.

Every benchmark regenerates one of the paper's figures or tables and saves
the ASCII rendering under ``benchmarks/results/`` so the reproduction
artifacts survive the run (the pytest-benchmark table only records
timings).
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_artifact(results_dir):
    """Write one rendered artifact; returns the path."""

    def _save(name: str, content: str) -> Path:
        path = results_dir / name
        path.write_text(content + "\n")
        return path

    return _save
