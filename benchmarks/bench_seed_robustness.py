"""Seed robustness — the headline shapes are not single-seed artifacts.

Runs the Fig. 6 / Table I comparison over ten independent seeds and
asserts the headline orderings hold in the aggregate (means) and in a
clear majority of individual seeds. The artifact records the full
distribution (mean +/- std) for the report.
"""

import numpy as np

from repro.experiments.config import DEFAULT_SPEC
from repro.experiments.runner import run_comparison
from repro.metrics.sla import summarize
from repro.workload.distributions import Bucket

SEEDS = tuple(range(42, 52))


def _collect():
    per_seed = []
    for seed in SEEDS:
        traces = run_comparison(
            DEFAULT_SPEC.with_bucket(Bucket.LARGE).with_seed(seed),
            scheduler_names=("ICOnly", "Greedy", "Op"),
        )
        row = {name: summarize(trace) for name, trace in traces.items()}
        per_seed.append(row)
    return per_seed


def test_headline_shapes_hold_across_ten_seeds(benchmark, save_artifact):
    per_seed = benchmark.pedantic(_collect, rounds=1, iterations=1)

    gains_greedy = [
        100 * (r["ICOnly"].makespan_s - r["Greedy"].makespan_s) / r["ICOnly"].makespan_s
        for r in per_seed
    ]
    gains_op = [
        100 * (r["ICOnly"].makespan_s - r["Op"].makespan_s) / r["ICOnly"].makespan_s
        for r in per_seed
    ]
    bursts_op = [r["Op"].burst_ratio for r in per_seed]

    lines = [
        f"gain vs ICOnly over {len(SEEDS)} seeds (large bucket):",
        f"  Greedy: mean {np.mean(gains_greedy):5.1f}%  std {np.std(gains_greedy):4.1f}%  "
        f"min {min(gains_greedy):5.1f}%",
        f"  Op    : mean {np.mean(gains_op):5.1f}%  std {np.std(gains_op):4.1f}%  "
        f"min {min(gains_op):5.1f}%",
        f"  Op burst ratio: mean {np.mean(bursts_op):.3f}  "
        f"range [{min(bursts_op):.3f}, {max(bursts_op):.3f}]",
    ]
    save_artifact("seed_robustness.txt", "\n".join(lines))

    # Mean gains in the paper's neighbourhood.
    assert 5.0 < np.mean(gains_greedy) < 30.0
    assert 5.0 < np.mean(gains_op) < 30.0
    # Bursting wins in >= 9 of 10 seeds for each scheduler.
    assert sum(g > 0 for g in gains_greedy) >= 9
    assert sum(g > 0 for g in gains_op) >= 9
    # Burst ratio stays inside the paper's band on every seed.
    assert all(0.05 < b < 0.40 for b in bursts_op)
