"""Cost of the determinism gate at scale: double-run-hash on ~1e4 jobs.

``repro check`` verifies bit-for-bit reproducibility by running a seeded
workload twice and hashing every lifecycle timestamp. This bench times
that harness on a workload two orders of magnitude larger than the
default spec (40 batches x ~250 jobs), answering "what would it cost to
gate CI on a *big* determinism check?" and pinning the per-record hash
overhead. The artifact lands in ``benchmarks/results/determinism.txt``.
"""

import time

from repro.analysis.determinism import check_scheduler, hash_trace
from repro.experiments.config import ExperimentSpec
from repro.experiments.runner import run_one

#: ~1e4 jobs: 40 Poisson batches of mean 250 jobs at the paper's 3-minute
#: inter-batch interval.
BIG_SPEC = ExperimentSpec(n_batches=40, mean_jobs_per_batch=250.0)

SCHEDULER = "Greedy"


def _double_run_hash():
    t0 = time.perf_counter()
    result = check_scheduler(SCHEDULER, spec=BIG_SPEC, invariants=False)
    harness_s = time.perf_counter() - t0

    # Isolate the hashing component on one fresh trace.
    trace = run_one(SCHEDULER, BIG_SPEC)
    t0 = time.perf_counter()
    digest = hash_trace(trace)
    hash_s = time.perf_counter() - t0
    assert digest == result.hash_a
    return result, harness_s, hash_s


def test_determinism_harness_scale(benchmark, save_artifact):
    result, harness_s, hash_s = benchmark.pedantic(
        _double_run_hash, rounds=1, iterations=1
    )

    assert result.deterministic, result.render()
    assert result.n_records >= 10_000

    per_record_us = 1e6 * hash_s / result.n_records
    lines = [
        f"determinism harness at scale ({SCHEDULER}, "
        f"{BIG_SPEC.n_batches} batches, ~{BIG_SPEC.mean_jobs_per_batch:.0f} "
        "jobs/batch)",
        "",
        result.render().strip(),
        "",
        f"double-run + hash harness : {harness_s:8.2f} s total",
        f"hash_trace alone          : {hash_s * 1e3:8.1f} ms "
        f"({per_record_us:.1f} us/record)",
        f"trace hash                : {result.hash_a}",
    ]
    path = save_artifact("determinism.txt", "\n".join(lines))
    assert path.exists()

    # Hashing must stay a rounding error next to the simulation itself,
    # or the gate would be too expensive to leave in CI.
    assert hash_s < harness_s / 10
