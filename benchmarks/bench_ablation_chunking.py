"""Ablation — Algorithm 2's chunking and the non-uniform variant (Sec. VII).

Compares the Order-Preserving scheduler (a) without chunking, (b) with the
paper's uniform chunking, and (c) with the future-work position-scaled
chunking ("modulating the chunking of jobs as a function of their position
in the input queue"). Chunking exists to reduce job-size variance so
ordered output flows smoothly; its payoff shows on the high-dispersion
UNIFORM bucket as a higher ordered-data availability area, bought with a
small split/merge makespan overhead.
"""

import numpy as np

from repro.core.chunking import ChunkPolicy
from repro.core.order_preserving import OrderPreservingScheduler
from repro.experiments.config import ExperimentSpec
from repro.experiments.runner import _training_data, build_workload
from repro.metrics.oo import ordered_data_series
from repro.metrics.sla import summarize
from repro.sim.environment import CloudBurstEnvironment, SystemConfig
from repro.workload.distributions import Bucket

SPEC = ExperimentSpec(bucket=Bucket.UNIFORM, n_batches=5,
                      system=SystemConfig(seed=31))

VARIANTS = {
    "no-chunking": dict(enable_chunking=False),
    "uniform": dict(enable_chunking=True, chunk_policy=ChunkPolicy()),
    "position-scaled": dict(
        enable_chunking=True,
        chunk_policy=ChunkPolicy(position_scaling=0.15),
    ),
}


def _run_variants():
    results = {}
    for seed in (31, 32, 33, 34, 35):
        spec = SPEC.with_seed(seed)
        batches = build_workload(spec)
        traces = {}
        for name, kwargs in VARIANTS.items():
            env = CloudBurstEnvironment(spec.system)
            env.pretrain_qrsm(*_training_data(spec))
            traces[name] = env.run(
                batches, OrderPreservingScheduler(env.estimator, **kwargs)
            )
        start = min(t.arrival_time for t in traces.values())
        end = max(t.end_time for t in traces.values())
        for name, trace in traces.items():
            s = summarize(trace)
            oo = ordered_data_series(trace, tolerance=0, start=start, end=end)
            results.setdefault(name, []).append(
                (s.makespan_s, oo.area(), len(trace.records))
            )
    return results


def test_ablation_chunking(benchmark, save_artifact):
    results = benchmark.pedantic(_run_variants, rounds=1, iterations=1)
    lines, means = [], {}
    for name, rows in results.items():
        mk = float(np.mean([r[0] for r in rows]))
        oo = float(np.mean([r[1] for r in rows]))
        units = float(np.mean([r[2] for r in rows]))
        means[name] = (mk, oo, units)
        lines.append(f"{name:16s} makespan={mk:8.1f}s oo0_area={oo / 1e6:7.3f}MMB*s "
                     f"units={units:.0f}")
    save_artifact("ablation_chunking.txt", "\n".join(lines))
    # Chunking raises ordered-data availability (its purpose in Alg. 2)...
    assert means["uniform"][1] > means["no-chunking"][1]
    # ...at a bounded split/merge makespan overhead.
    assert means["uniform"][0] <= means["no-chunking"][0] * 1.06
    # Position scaling coarsens deep-queue chunks: fewer units than uniform.
    assert means["position-scaled"][2] <= means["uniform"][2]
