"""Figure 10 — relative OO difference vs IC-only, tol_limit=4, large bucket.

Shape criteria: "the Order Preserving scheduler and the Size Interval
Bandwidth Splitting scheduler show higher OO metric w.r.t. the Greedy
scheduler (almost at all points of time)", and SIBS shows "a sharp increase
in the data availability ... towards the end of the execution time".
"""

import numpy as np

from repro.experiments.config import HIGH_VARIATION_SPEC
from repro.experiments.figures import fig10_oo_relative
from repro.experiments.svg_plot import line_chart_svg


def _mean_rel_over_seeds(seeds=(42, 43, 44)):
    acc = {}
    for seed in seeds:
        r = fig10_oo_relative(spec=HIGH_VARIATION_SPEC, seed=seed)
        for name, m in r.mean_relative.items():
            acc.setdefault(name, []).append(m)
    return {name: float(np.mean(v)) for name, v in acc.items()}


def test_fig10_oo_relative(benchmark, save_artifact):
    result = benchmark.pedantic(
        fig10_oo_relative, kwargs=dict(seed=43), rounds=1, iterations=1
    )
    save_artifact("fig10_oo_relative.txt", result.render())
    save_artifact("fig10_oo_relative.svg", line_chart_svg(
        result.times - result.times[0], result.relative,
        title="Fig 10 — relative OO difference vs ICOnly (tol=4, large)",
        x_label="time (s)", y_label="relative difference",
    ))
    assert result.tolerance == 4
    assert set(result.relative) == {"Greedy", "Op", "OpSIBS"}


def test_fig10_ordering_over_seeds(benchmark, save_artifact):
    means = benchmark.pedantic(_mean_rel_over_seeds, rounds=1, iterations=1)
    save_artifact(
        "fig10_mean_relative.txt",
        "\n".join(f"{k}: {v:+.4f}" for k, v in means.items()),
    )
    # Op and SIBS sit above Greedy relative to the IC-only baseline.
    assert means["Op"] > means["Greedy"]
    assert means["OpSIBS"] > means["Greedy"]
    # All bursting schedulers improve on the baseline overall.
    for name in ("Greedy", "Op", "OpSIBS"):
        assert means[name] > 0.0
