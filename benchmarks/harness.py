"""Canonical bench harness runner — thin alias for ``repro bench``.

Run from the repo root:

    PYTHONPATH=src python benchmarks/harness.py [--smoke] [--out PATH]

Writes ``BENCH_core.json`` (see :mod:`repro.perf.harness` for the schema).
"""

from repro.perf.harness import main

if __name__ == "__main__":
    raise SystemExit(main())
