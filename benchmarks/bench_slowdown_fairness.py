"""Per-job fairness — what order preservation costs small jobs.

Not a paper figure; it quantifies a trade-off the paper leaves implicit.
Slowdown (response / processing demand, the stretch metric of the paper's
ref. [8]) per size class shows the two sides of the Op design: Greedy
freely bursts small jobs ahead of their turn, roughly halving their p95
stretch, while Op's slackness discipline keeps them in line behind the
large jobs — better ordered-data availability (Figs. 9-10), worse
small-job stretch. Applications pick their side via the scheduler.
"""

import numpy as np

from repro.experiments.config import DEFAULT_SPEC
from repro.experiments.runner import run_comparison
from repro.metrics.slowdown import slowdown_by_size
from repro.workload.distributions import Bucket

NAMES = ("ICOnly", "Greedy", "Op", "OpSIBS")


def _collect():
    acc = {}
    for seed in (42, 43, 44, 45, 46):
        traces = run_comparison(
            DEFAULT_SPEC.with_bucket(Bucket.UNIFORM).with_seed(seed),
            scheduler_names=NAMES,
        )
        for name, trace in traces.items():
            by = slowdown_by_size(trace)
            acc.setdefault(name, []).append(
                (by["small"].p95, by["large"].p95, by["small"].mean)
            )
    return {
        name: tuple(float(np.mean([r[i] for r in v])) for i in range(3))
        for name, v in acc.items()
    }


def test_slowdown_fairness(benchmark, save_artifact):
    means = benchmark.pedantic(_collect, rounds=1, iterations=1)
    lines = [
        f"{name:8s} small_p95={v[0]:6.2f} large_p95={v[1]:6.2f} small_mean={v[2]:6.2f}"
        for name, v in means.items()
    ]
    save_artifact("slowdown_fairness.txt", "\n".join(lines))
    # Greedy's freedom to burst small jobs early buys them stretch...
    assert means["Greedy"][0] < means["Op"][0] * 0.8
    # ...while Op never does worse than the no-bursting baseline.
    assert means["Op"][0] <= means["ICOnly"][0] * 1.1
    # Large jobs are fine everywhere (they ARE the queue).
    for name in NAMES:
        assert means[name][1] < means[name][0]
