"""Ablation — hard link outages (robustness under network variation).

Section V.B.1 concludes that "scheduling according to the slackness
criteria reduces the chance of an internal job waiting for the results
from an external job and hence is more robust to network
variations/errors". We inject a 4-minute hard outage (both directions
pinned to 5% capacity) mid-run and measure how much extra output ends up
blocked behind out-of-order stragglers for each scheduler, averaged over
5 seeds.
"""

import numpy as np

from repro.experiments.config import ExperimentSpec
from repro.experiments.runner import build_workload, run_one
from repro.metrics.series import blocked_output_mbs
from repro.sim.environment import SystemConfig
from repro.sim.faults import OutageInjector, OutageWindow
from repro.workload.distributions import Bucket

SPEC = ExperimentSpec(bucket=Bucket.LARGE, n_batches=5,
                      system=SystemConfig(seed=71))
OUTAGE = OutageWindow(start_s=400.0, duration_s=240.0, residual_fraction=0.05)


def _with_outage(env):
    OutageInjector(env.sim, [env.up_capacity, env.down_capacity], [OUTAGE])


def _run_matrix():
    rows = []
    for seed in (71, 72, 73, 74, 75):
        spec = SPEC.with_seed(seed)
        batches = build_workload(spec)
        for name in ("Greedy", "Op"):
            base = run_one(name, spec, batches=batches)
            hit = run_one(name, spec, batches=batches, env_hook=_with_outage)
            rows.append({
                "seed": seed,
                "scheduler": name,
                "makespan_base": base.makespan,
                "makespan_outage": hit.makespan,
                "blocked_base": blocked_output_mbs(base),
                "blocked_outage": blocked_output_mbs(hit),
                "all_complete": all(r.completed for r in hit.records),
            })
    return rows


def test_ablation_outage(benchmark, save_artifact):
    rows = benchmark.pedantic(_run_matrix, rounds=1, iterations=1)
    lines = [
        f"seed={r['seed']} {r['scheduler']:6s} "
        f"makespan {r['makespan_base']:7.1f} -> {r['makespan_outage']:7.1f}s | "
        f"blocked {r['blocked_base'] / 1e3:6.1f} -> {r['blocked_outage'] / 1e3:6.1f} kMB*s"
        for r in rows
    ]
    save_artifact("ablation_outage.txt", "\n".join(lines))
    # Liveness: no run wedges during or after the outage.
    assert all(r["all_complete"] for r in rows)
    # The outage is real: makespans grow.
    assert all(r["makespan_outage"] >= r["makespan_base"] - 1.0 for r in rows)
    # Robustness claim: Op's ordering degrades no more than Greedy's (mean
    # extra blocked output over seeds; 10% head-room for run noise).
    deg = {
        name: np.mean([
            r["blocked_outage"] - r["blocked_base"]
            for r in rows if r["scheduler"] == name
        ])
        for name in ("Greedy", "Op")
    }
    assert deg["Op"] <= deg["Greedy"] * 1.1
