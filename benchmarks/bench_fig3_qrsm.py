"""Figure 3 — quadratic response surface model for processing time.

Regenerates the QRSM fit on synthetic production data and times the full
train+evaluate cycle. Shape criterion: the quadratic family explains the
bulk of processing-time variance out of sample (the residual is the
irreducible lognormal noise of the environment).
"""

from repro.experiments.figures import fig3_qrsm
from repro.experiments.svg_plot import line_chart_svg


def test_fig3_qrsm(benchmark, save_artifact):
    result = benchmark.pedantic(
        fig3_qrsm, kwargs=dict(n_train=400, n_test=200, seed=7),
        rounds=3, iterations=1,
    )
    save_artifact("fig3_qrsm.txt", result.render())
    save_artifact("fig3_qrsm.svg", line_chart_svg(
        result.surface_sizes,
        {"predicted": result.surface_pred, "true mean": result.surface_true},
        title="Fig 3 — QRSM response vs document size",
        x_label="document size (MB)", y_label="processing time (s)",
    ))
    assert result.r_squared_train > 0.85
    assert result.r_squared_test > 0.75
    # The 1-D size slice of the surface tracks the true mean response.
    import numpy as np
    rel = np.abs(result.surface_pred - result.surface_true) / result.surface_true
    assert float(np.median(rel)) < 0.15


def test_fig3_qrsm_l1_linear_program(benchmark, save_artifact):
    """The paper-faithful LP (least absolute deviations) variant."""
    result = benchmark.pedantic(
        fig3_qrsm, kwargs=dict(n_train=150, n_test=100, seed=7, method="l1"),
        rounds=1, iterations=1,
    )
    save_artifact("fig3_qrsm_l1.txt", result.render())
    assert result.r_squared_test > 0.7
