"""The metrics registry: merge algebra, snapshots, text exposition.

The fleet folds per-shard registries in shard-index order, exactly like
ledgers and streaming stats — so the merge must be associative, and the
canonical snapshot must survive a JSON round trip (it travels over the
fleet command protocol). The exposition tests pin the Prometheus text
format byte-for-byte: it is scraped by external tooling, so drift is an
interface break, not a cosmetic change.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    MetricsRegistry,
    parse_exposition,
    render_exposition,
    validate_exposition,
)


def make_shard_registry(shard: int) -> MetricsRegistry:
    """A registry shaped like one shard's, with shard-dependent values."""
    reg = MetricsRegistry()
    completed = reg.counter(
        "repro_jobs_completed_total", "Jobs completed.", labels=("placement",)
    )
    completed.counter_labels("IC").inc(10.0 * (shard + 1))
    if shard % 2 == 0:
        completed.counter_labels("EC").inc(3.0 + shard)
    depth = reg.gauge("fleet_worker_queue_depth", "Commands queued.")
    depth.set(float(shard))
    hist = reg.histogram(
        "repro_response_seconds",
        "Response time.",
        buckets=(1.0, 10.0, 100.0),
    )
    for value in (0.5 * (shard + 1), 5.0, 50.0 + shard):
        hist.observe(value)
    return reg


def merged(*registries: MetricsRegistry) -> MetricsRegistry:
    out = MetricsRegistry()
    for reg in registries:
        out.merge(reg)
    return out


class TestMergeAlgebra:
    def test_merge_is_associative(self):
        a, b, c = (make_shard_registry(i) for i in range(3))
        left = merged(merged(a, b), c)
        right = merged(a, merged(b, c))
        assert left.snapshot_sha256() == right.snapshot_sha256()

    def test_shard_index_order_fold_matches_elementwise_sums(self):
        shards = [make_shard_registry(i) for i in range(4)]
        fold = merged(*shards)
        ic = fold.get("repro_jobs_completed_total").counter_labels("IC")
        assert ic.value == sum(10.0 * (i + 1) for i in range(4))
        ec = fold.get("repro_jobs_completed_total").counter_labels("EC")
        assert ec.value == (3.0 + 0) + (3.0 + 2)
        hist = fold.get("repro_response_seconds").histogram_labels()
        assert hist.count == 12
        depth = fold.get("fleet_worker_queue_depth").gauge_labels()
        assert depth.value == 0.0 + 1.0 + 2.0 + 3.0

    def test_merge_does_not_mutate_the_source(self):
        a, b = make_shard_registry(0), make_shard_registry(1)
        before = b.snapshot_sha256()
        a.merge(b)
        assert b.snapshot_sha256() == before

    def test_snapshot_survives_json_round_trip(self):
        source = make_shard_registry(2)
        wire = json.loads(json.dumps(source.snapshot()))
        rebuilt = MetricsRegistry()
        rebuilt.merge_snapshot(wire)
        assert rebuilt.snapshot_sha256() == source.snapshot_sha256()

    def test_bucket_layout_mismatch_refuses_to_merge(self):
        a = MetricsRegistry()
        a.histogram("h_s", "h", buckets=(1.0, 2.0))
        snap = a.snapshot()
        b = MetricsRegistry()
        b.histogram("h_s", "h", buckets=(1.0, 2.0, 3.0))
        with pytest.raises(ValueError):
            b.merge_snapshot(snap)

    def test_reregister_identical_signature_returns_same_family(self):
        reg = MetricsRegistry()
        first = reg.counter("x_total", "x", labels=("a",))
        again = reg.counter("x_total", "x", labels=("a",))
        assert first is again

    def test_reregister_conflicting_signature_raises(self):
        reg = MetricsRegistry()
        reg.counter("x_total", "x")
        with pytest.raises(ValueError):
            reg.gauge("x_total", "x")


GOLDEN_EXPOSITION = """\
# HELP demo_depth Queue depth.
# TYPE demo_depth gauge
demo_depth 7
# HELP demo_jobs_total Jobs seen.
# TYPE demo_jobs_total counter
demo_jobs_total{placement="EC"} 2.5
demo_jobs_total{placement="IC"} 4
# HELP demo_latency_seconds Latency.
# TYPE demo_latency_seconds histogram
demo_latency_seconds_bucket{le="1"} 1
demo_latency_seconds_bucket{le="10"} 3
demo_latency_seconds_bucket{le="+Inf"} 4
demo_latency_seconds_sum 117.5
demo_latency_seconds_count 4
"""


def make_golden_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    jobs = reg.counter("demo_jobs_total", "Jobs seen.", labels=("placement",))
    jobs.counter_labels("IC").inc(4.0)
    jobs.counter_labels("EC").inc(2.5)
    reg.gauge("demo_depth", "Queue depth.").set(7.0)
    hist = reg.histogram("demo_latency_seconds", "Latency.", buckets=(1.0, 10.0))
    for value in (0.5, 5.0, 7.0, 105.0):
        hist.observe(value)
    return reg


class TestExposition:
    def test_golden_text(self):
        assert render_exposition(make_golden_registry()) == GOLDEN_EXPOSITION

    def test_parse_round_trip(self):
        families = parse_exposition(GOLDEN_EXPOSITION)
        by_name = {f.name: f for f in families}
        assert set(by_name) == {
            "demo_depth", "demo_jobs_total", "demo_latency_seconds",
        }
        assert by_name["demo_jobs_total"].kind == "counter"
        assert by_name["demo_jobs_total"].value(placement="IC") == 4.0
        assert by_name["demo_jobs_total"].value(placement="EC") == 2.5
        assert by_name["demo_depth"].value() == 7.0
        hist = by_name["demo_latency_seconds"]
        assert hist.kind == "histogram"
        by_sample = {(s.name, s.labels): s.value for s in hist.samples}
        assert by_sample[("demo_latency_seconds_count", ())] == 4.0
        assert by_sample[("demo_latency_seconds_sum", ())] == 117.5
        assert by_sample[
            ("demo_latency_seconds_bucket", (("le", "+Inf"),))
        ] == 4.0

    def test_validate_accepts_the_golden(self):
        validate_exposition(GOLDEN_EXPOSITION)

    def test_validate_rejects_duplicate_family(self):
        text = GOLDEN_EXPOSITION + "# HELP demo_depth again\n"
        with pytest.raises(ValueError):
            validate_exposition(text)

    def test_validate_rejects_untyped_sample(self):
        with pytest.raises(ValueError):
            validate_exposition("mystery_metric 1\n")

    def test_label_values_are_escaped(self):
        reg = MetricsRegistry()
        fam = reg.counter("esc_total", "Escaping.", labels=("path",))
        fam.counter_labels('a"b\\c\nd').inc()
        text = render_exposition(reg)
        assert 'esc_total{path="a\\"b\\\\c\\nd"} 1' in text
        parsed = parse_exposition(text)
        assert parsed[0].samples[0].label("path") == 'a"b\\c\nd'
