"""Phased workload schedule tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workload.distributions import Bucket
from repro.workload.schedule import WorkloadPhase, WorkloadSchedule
from repro.workload.stats import workload_stats


def two_phase(seed=5) -> WorkloadSchedule:
    s = WorkloadSchedule(seed=seed)
    s.add(WorkloadPhase(Bucket.LARGE, n_batches=3, mean_jobs_per_batch=8))
    s.add(WorkloadPhase(Bucket.SMALL, n_batches=2, mean_jobs_per_batch=5,
                        batch_interval_s=120.0))
    return s


class TestPhase:
    def test_duration(self):
        p = WorkloadPhase(Bucket.SMALL, n_batches=4, batch_interval_s=100.0)
        assert p.duration_s == 400.0

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadPhase(Bucket.SMALL, n_batches=0)
        with pytest.raises(ValueError):
            WorkloadPhase(Bucket.SMALL, n_batches=1, mean_jobs_per_batch=0)


class TestSchedule:
    def test_ids_consecutive_across_phases(self):
        batches = two_phase().generate()
        ids = [j.job_id for b in batches for j in b.jobs]
        assert ids == list(range(1, len(ids) + 1))

    def test_batch_ids_consecutive(self):
        batches = two_phase().generate()
        assert [b.batch_id for b in batches] == list(range(len(batches)))

    def test_arrivals_monotone_across_phase_boundary(self):
        batches = two_phase().generate()
        arrivals = [b.arrival_time for b in batches]
        assert arrivals == sorted(arrivals)
        # Phase 2 starts exactly after phase 1's span (3 * 180s).
        assert arrivals[3] == pytest.approx(3 * 180.0)
        assert arrivals[4] - arrivals[3] == pytest.approx(120.0)

    def test_phase_buckets_respected(self):
        batches = two_phase().generate()
        large = [j.input_mb for b in batches[:3] for j in b.jobs]
        small = [j.input_mb for b in batches[3:] for j in b.jobs]
        assert np.mean(large) > np.mean(small)

    def test_deterministic(self):
        b1 = two_phase().generate()
        b2 = two_phase().generate()
        assert [j.true_proc_time for b in b1 for j in b.jobs] == [
            j.true_proc_time for b in b2 for j in b.jobs
        ]

    def test_adding_phase_preserves_earlier_ones(self):
        base = two_phase().generate()
        extended_schedule = two_phase()
        extended_schedule.add(WorkloadPhase(Bucket.UNIFORM, n_batches=1))
        extended = extended_schedule.generate()
        assert [j.true_proc_time for b in base for j in b.jobs] == [
            j.true_proc_time
            for b in extended[: len(base)]
            for j in b.jobs
        ]

    def test_empty_schedule_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSchedule().generate()

    def test_totals(self):
        s = two_phase()
        assert s.total_batches == 5
        assert s.duration_s == pytest.approx(3 * 180.0 + 2 * 120.0)

    def test_stats_integration(self):
        stats = workload_stats(two_phase().generate())
        assert stats.n_batches == 5
        assert stats.n_jobs > 0
