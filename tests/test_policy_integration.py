"""Integration tests: the policy plane wired into sim, fleet, obs and CLI."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments.config import ExperimentSpec
from repro.experiments.runner import run_one
from repro.policy import (
    ConvergerConfig,
    PolicyConfig,
    ScalingPolicy,
    attach_policy,
)
from repro.sim.environment import SystemConfig

FAST = ExperimentSpec(
    n_batches=2, mean_jobs_per_batch=8,
    system=SystemConfig(ic_machines=4, ec_machines=3, seed=81),
)

HOLD_FOUR = PolicyConfig(
    policies=(
        ScalingPolicy(name="hold", action="target", amount=4, max_capacity=16),
    ),
    converger=ConvergerConfig(interval_s=120.0),
)

EXAMPLES = Path(__file__).resolve().parent.parent / "examples" / "policies"


class TestAttach:
    def test_metadata_block_lands_outside_the_digest(self):
        from repro.analysis.determinism import hash_trace

        captured = {}

        def hook(env):
            captured["policy"] = attach_policy(env, HOLD_FOUR)

        trace = run_one("Op", FAST, env_hook=hook)
        block = trace.metadata["policy"]
        assert block["enabled"] is True
        assert block["audit_sha256"] == captured[
            "policy"
        ].converger.audit_sha256()
        assert block["summary"]["ticks"] == len(block["decisions"])
        assert block["summary"]["desired"] == 4
        # The block is metadata: stripping it must not change the hash.
        h = hash_trace(trace)
        del trace.metadata["policy"]
        assert hash_trace(trace) == h

    def test_double_attach_rejected(self):
        def hook(env):
            attach_policy(env, HOLD_FOUR)
            with pytest.raises(RuntimeError, match="already"):
                attach_policy(env, HOLD_FOUR)

        run_one("Op", FAST, env_hook=hook)

    def test_disabled_config_never_starts_the_loop(self):
        config = PolicyConfig(
            policies=HOLD_FOUR.policies,
            converger=HOLD_FOUR.converger,
            enabled=False,
        )
        captured = {}

        def hook(env):
            captured["policy"] = attach_policy(env, config)

        trace = run_one("Op", FAST, env_hook=hook)
        assert captured["policy"].converger.ticks == 0
        assert trace.metadata["policy"]["enabled"] is False


class TestFleet:
    def test_shard_policy_snapshots_merge_in_shard_order(self):
        from repro.fleet import (
            FleetConfig,
            FleetLoadConfig,
            default_registry,
            run_fleet_load,
        )

        scaling = PolicyConfig(
            policies=(
                ScalingPolicy(
                    name="hold", action="target", amount=3, max_capacity=8
                ),
            ),
            converger=ConvergerConfig(interval_s=60.0),
        )

        def one_run():
            return run_fleet_load(
                FleetConfig(n_shards=2, seed=2024, scaling=scaling),
                FleetLoadConfig(n_jobs=120, rate_per_s=50.0, seed=2024),
                registry=default_registry(6),
            ).report

        report_a, report_b = one_run(), one_run()
        assert report_a.policy is not None
        assert [snap["shard"] for snap in report_a.policy] == [0, 1]
        for snap in report_a.policy:
            assert len(snap["audit_sha256"]) == 64
            assert snap["enabled"] is True
        assert [s["audit_sha256"] for s in report_a.policy] == [
            s["audit_sha256"] for s in report_b.policy
        ]
        assert report_a.as_dict()["policy"] == report_a.policy

    def test_no_scaling_config_keeps_report_policy_none(self):
        from repro.fleet import (
            FleetConfig,
            FleetLoadConfig,
            default_registry,
            run_fleet_load,
        )

        report = run_fleet_load(
            FleetConfig(n_shards=2, seed=2024),
            FleetLoadConfig(n_jobs=60, rate_per_s=50.0, seed=2024),
            registry=default_registry(6),
        ).report
        assert report.policy is None
        assert report.as_dict()["policy"] is None


class TestObs:
    def test_converge_hook_feeds_gauges_counters_and_lag(self):
        from repro.obs import attach_obs

        captured = {}

        def hook(env):
            captured["obs"] = attach_obs(env)
            captured["policy"] = attach_policy(env, HOLD_FOUR)

        run_one("Op", FAST, env_hook=hook)
        runtime = captured["obs"]
        names = {f.name for f in runtime.registry.families()}
        assert {
            "repro_policy_desired_capacity",
            "repro_policy_observed_capacity",
            "repro_policy_steps_total",
            "repro_policy_convergence_lag_seconds",
        } <= names
        snapshot = runtime.registry.snapshot()
        text = json.dumps(snapshot)
        assert "repro_policy_desired_capacity" in text
        # The desired gauge tracks the winning proposal.
        desired = next(
            f for f in runtime.registry.families()
            if f.name == "repro_policy_desired_capacity"
        )
        assert any(
            series.value == 4.0 for _, series in desired.series_items()
        )

    def test_converge_points_in_span_stream(self):
        from repro.obs import attach_obs

        captured = {}

        def hook(env):
            captured["obs"] = attach_obs(env)
            attach_policy(env, HOLD_FOUR)

        run_one("Op", FAST, env_hook=hook)
        spans = captured["obs"].spans.as_dicts()
        assert any(s["name"] == "converge" for s in spans)


class TestCli:
    def test_validate_accepts_the_example(self, capsys):
        from repro.cli import main

        assert main(["policy", "validate", str(EXAMPLES / "burst-idle.json")]) == 0
        assert "OK" in capsys.readouterr().out

    def test_validate_rejects_bad_files_with_exit_2(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"policies": [{"name": "p"}]}))
        assert main(["policy", "validate", str(bad)]) == 2
        assert "missing required key" in capsys.readouterr().err

    def test_show_renders_winner_order_and_json(self, capsys):
        from repro.cli import main

        assert main(["policy", "show", str(EXAMPLES / "burst-idle.json")]) == 0
        out = capsys.readouterr().out
        assert "burst-on-queue" in out and "severity" in out
        assert main(
            ["policy", "show", "--json", str(EXAMPLES / "burst-idle.json")]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert {p["name"] for p in doc["policies"]} == {
            "hold-floor", "burst-on-queue", "shrink-when-idle",
        }

    def test_simulate_writes_the_audit_log(self, tmp_path, capsys):
        from repro.cli import main

        policy_file = tmp_path / "hold.json"
        policy_file.write_text(
            json.dumps(
                {
                    "policies": [
                        {
                            "name": "hold",
                            "action": "target",
                            "amount": 4,
                            "max_capacity": 16,
                        }
                    ],
                    "converger": {"interval_s": 120.0},
                }
            )
        )
        out = tmp_path / "audit.json"
        code = main(
            [
                "policy", "simulate",
                "--policy", str(policy_file),
                "--scheduler", "Op",
                "--out", str(out),
            ]
        )
        assert code == 0
        assert "converger:" in capsys.readouterr().out
        log = json.loads(out.read_text())
        assert log["scheduler"] == "Op"
        assert len(log["audit_sha256"]) == 64
        assert log["decisions"]
        assert log["summary"]["audit_sha256"] == log["audit_sha256"]

    def test_simulate_rejects_unknown_scheduler(self, capsys):
        from repro.cli import main

        code = main(
            [
                "policy", "simulate",
                "--policy", str(EXAMPLES / "burst-idle.json"),
                "--scheduler", "Nope",
            ]
        )
        assert code == 2
        assert "unknown scheduler" in capsys.readouterr().err


class TestAutoscalerAdapter:
    def test_legacy_constructor_warns_and_exposes_the_converger(self):
        from repro.policy.converge import Converger
        from repro.sim.autoscale import ECAutoScaler
        from repro.sim.cluster import Cluster
        from repro.sim.engine import Simulator

        sim = Simulator()
        cluster = Cluster(sim, "ec", 2)
        with pytest.warns(DeprecationWarning, match="repro.policy"):
            scaler = ECAutoScaler(
                sim, cluster, min_instances=1, max_instances=4,
                interval_s=10.0, scale_up_queue=2,
            )
        assert isinstance(scaler.converger, Converger)
        assert scaler.converger.config.basis == "gross"
        assert scaler.converger.config.delete_offline is False

    def test_scale_events_mirror_converger_steps(self):
        import warnings

        from repro.sim.autoscale import ECAutoScaler
        from repro.sim.cluster import Cluster
        from repro.sim.engine import Simulator

        sim = Simulator()
        cluster = Cluster(sim, "ec", 1)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            scaler = ECAutoScaler(
                sim, cluster, min_instances=1, max_instances=4,
                interval_s=10.0, scale_up_queue=1,
            )
        for _ in range(3):
            cluster.submit(object(), 10_000.0, lambda item, machine: None)
        sim.run(until=11.0)
        assert cluster.n_machines > 1
        assert scaler.events
        assert all(e.action == "up" for e in scaler.events)
        assert scaler.events[-1].pool_size == cluster.n_machines
