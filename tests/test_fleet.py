"""Unit tests for the sharded multi-tenant fleet (repro.fleet).

Covers the tenancy vocabulary (SLA classes, scaled tickets, quotas), the
stable tenant->shard routing, the quota gate in front of the broker, and
the fleet-level determinism contract: two runs of the same ``(seed,
n_shards)`` agree bit-for-bit on shard trace hashes and on the merged
fleet SHA-256, and quota refusals surface as a distinct reason all the
way up the aggregated report.
"""

from __future__ import annotations

import pytest

from repro.econ.penalties import PenaltySchedule
from repro.fleet import (
    BRONZE,
    GOLD,
    SILVER,
    FleetConfig,
    FleetLoadConfig,
    FleetManager,
    ScaledTicket,
    SLAClass,
    TenantSpec,
    TenantRegistry,
    UnknownTenantError,
    default_registry,
    run_fleet_load,
)
from repro.fleet.sharding import QUOTA_REASON
from repro.metrics.tickets import ProportionalTicket
from repro.service.policy import SLAPolicy
from repro.sim.tracing import JobRecord


def fast_config(**overrides) -> FleetConfig:
    """A small fleet with a minimal QRSM pretrain (quotes need a fitted
    estimator; unit tests don't need a well-calibrated one)."""
    defaults = dict(n_shards=2, seed=2024, pretrain_jobs=40)
    defaults.update(overrides)
    return FleetConfig(**defaults)


def record(est_proc_time: float = 100.0) -> JobRecord:
    return JobRecord(
        job_id=1,
        batch_id=1,
        arrival_time=0.0,
        input_mb=1.0,
        output_mb=1.0,
        est_proc_time=est_proc_time,
    )


# ----------------------------------------------------------------------
# Tenancy vocabulary
# ----------------------------------------------------------------------
class TestSLAClasses:
    def test_canonical_tiers_order_promises_and_penalties(self):
        assert GOLD.promise_multiplier < SILVER.promise_multiplier
        assert SILVER.promise_multiplier < BRONZE.promise_multiplier
        assert GOLD.penalty_weight > SILVER.penalty_weight > BRONZE.penalty_weight

    def test_invalid_class_parameters_are_rejected(self):
        with pytest.raises(ValueError):
            SLAClass(name="bad", promise_multiplier=0.0, penalty_weight=1.0)
        with pytest.raises(ValueError):
            SLAClass(name="bad", promise_multiplier=1.0, penalty_weight=-1.0)
        with pytest.raises(ValueError):
            SLAClass(
                name="bad",
                promise_multiplier=1.0,
                penalty_weight=1.0,
                default_quota_jobs=0,
            )

    def test_scaled_ticket_multiplies_base_promise(self):
        base = ProportionalTicket(base_s=100.0, factor=2.0)
        rec = record(est_proc_time=50.0)
        scaled = ScaledTicket(base, 0.75)
        assert scaled.promise_s(rec) == pytest.approx(
            0.75 * base.promise_s(rec)
        )
        with pytest.raises(ValueError):
            ScaledTicket(base, 0.0)


class TestTenant:
    def test_gold_policy_rescales_only_the_ticket(self):
        base = SLAPolicy(ticket=ProportionalTicket(base_s=100.0, factor=2.0))
        gold = TenantSpec(tenant_id="g", sla_class=GOLD).policy(base)
        assert isinstance(gold.ticket, ScaledTicket)
        assert gold.ticket.multiplier == GOLD.promise_multiplier
        assert gold.degraded_slack_s == base.degraded_slack_s
        assert gold.max_in_system == base.max_in_system

    def test_silver_policy_is_the_base_unchanged(self):
        base = SLAPolicy(ticket=ProportionalTicket(base_s=100.0, factor=2.0))
        assert TenantSpec(tenant_id="s", sla_class=SILVER).policy(base) is base

    def test_promise_free_base_stays_promise_free(self):
        base = SLAPolicy(ticket=None)
        assert TenantSpec(tenant_id="g", sla_class=GOLD).policy(base) is base

    def test_penalty_schedule_scales_by_class_weight(self):
        base = PenaltySchedule()
        gold = TenantSpec(tenant_id="g", sla_class=GOLD).penalty_schedule(base)
        bronze = TenantSpec(tenant_id="b", sla_class=BRONZE).penalty_schedule(base)
        assert bronze is base  # weight 1.0
        late = record()
        late.promise_s = 10.0
        late.completion_time = 100.0  # 90s late
        assert gold.penalty_usd(late) == pytest.approx(
            GOLD.penalty_weight * base.penalty_usd(late)
        )

    def test_quota_falls_back_to_class_default(self):
        capped_class = SLAClass(
            name="capped",
            promise_multiplier=1.0,
            penalty_weight=1.0,
            default_quota_jobs=7,
        )
        assert TenantSpec(tenant_id="a", sla_class=capped_class).effective_quota_jobs == 7
        assert (
            TenantSpec(
                tenant_id="b", sla_class=capped_class, quota_jobs=3
            ).effective_quota_jobs
            == 3
        )
        assert TenantSpec(tenant_id="c").effective_quota_jobs is None

    def test_tenant_id_validation(self):
        with pytest.raises(ValueError):
            TenantSpec(tenant_id="")
        with pytest.raises(ValueError):
            TenantSpec(tenant_id="a/b")
        with pytest.raises(ValueError):
            TenantSpec(tenant_id="ok", quota_jobs=0)


# ----------------------------------------------------------------------
# Registry and routing
# ----------------------------------------------------------------------
class TestRegistryRouting:
    def test_register_get_and_unknown(self):
        registry = TenantRegistry([TenantSpec(tenant_id="a")])
        assert registry.get("a").tenant_id == "a"
        assert "a" in registry and "zzz" not in registry
        with pytest.raises(ValueError):
            registry.register(TenantSpec(tenant_id="a"))
        with pytest.raises(UnknownTenantError):
            registry.get("zzz")

    def test_shard_index_is_stable_and_in_range(self):
        for n_shards in (1, 2, 4, 8):
            for tenant in default_registry(16):
                index = TenantRegistry.shard_index(tenant.tenant_id, n_shards)
                assert 0 <= index < n_shards
                # Same answer every time — routing is a pure function.
                assert index == TenantRegistry.shard_index(
                    tenant.tenant_id, n_shards
                )

    def test_tenants_for_shard_partitions_the_registry(self):
        registry = default_registry(16)
        n_shards = 4
        routed = [
            t.tenant_id
            for shard in range(n_shards)
            for t in registry.tenants_for_shard(shard, n_shards)
        ]
        assert sorted(routed) == sorted(registry.tenant_ids)

    def test_default_registry_cycles_classes(self):
        registry = default_registry(8)
        classes = [t.sla_class.name for t in registry]
        assert classes == [
            "gold", "silver", "bronze", "bronze",
            "gold", "silver", "bronze", "bronze",
        ]


# ----------------------------------------------------------------------
# Quota gate
# ----------------------------------------------------------------------
class TestQuota:
    def make_fleet(self, quota_jobs: int = 3) -> FleetManager:
        registry = TenantRegistry(
            [TenantSpec(tenant_id="capped", quota_jobs=quota_jobs)]
        )
        return FleetManager(fast_config(n_shards=1), registry)

    def test_overflow_is_refused_with_distinct_reason(self):
        manager = self.make_fleet(quota_jobs=3)
        shard = manager.shard_for("capped")
        _, jobs = shard.synthesize_jobs(5)
        outcomes = manager.submit("capped", jobs)
        assert len(outcomes) == 5
        refused = [o for o in outcomes if o.result.reason == QUOTA_REASON]
        assert len(refused) == 2
        assert all(not o.admitted for o in refused)
        # Refusals still carry a quote — the client sees the price it
        # would have paid.
        assert all(o.quote is not None for o in refused)

    def test_exhausted_quota_refuses_everything_without_raising(self):
        manager = self.make_fleet(quota_jobs=2)
        shard = manager.shard_for("capped")
        _, first = shard.synthesize_jobs(2)
        manager.submit("capped", first)
        account = manager.account("capped")
        assert account.quota_remaining == 0
        _, second = shard.synthesize_jobs(3)
        outcomes = manager.submit("capped", second)
        assert [o.result.reason for o in outcomes] == [QUOTA_REASON] * 3

    def test_quota_counts_admissions_not_submissions(self):
        manager = self.make_fleet(quota_jobs=3)
        account = manager.account("capped")
        assert account.quota_remaining == 3
        shard = manager.shard_for("capped")
        _, jobs = shard.synthesize_jobs(2)
        outcomes = manager.submit("capped", jobs)
        admitted = sum(1 for o in outcomes if o.admitted)
        assert account.admitted_jobs == admitted
        assert account.quota_remaining == 3 - admitted

    def test_quota_refusals_keep_counters_consistent(self):
        manager = self.make_fleet(quota_jobs=1)
        shard = manager.shard_for("capped")
        _, jobs = shard.synthesize_jobs(4)
        manager.submit("capped", jobs)
        stats = shard.stats
        assert stats.submitted == 4
        assert (
            stats.accepted + stats.accepted_degraded + stats.rejected
            == stats.submitted
        )
        assert stats.rejections_by_reason.get(QUOTA_REASON, 0) >= 3


# ----------------------------------------------------------------------
# Fleet determinism and aggregation
# ----------------------------------------------------------------------
class TestFleetDeterminism:
    def run_once(self, seed: int = 2024):
        registry = default_registry(7)
        registry.register(
            TenantSpec(tenant_id="starved", sla_class=BRONZE, quota_jobs=5)
        )
        return run_fleet_load(
            fast_config(n_shards=2, seed=seed),
            FleetLoadConfig(n_jobs=300, rate_per_s=50.0, seed=seed),
            registry=registry,
        )

    def test_double_run_agrees_bit_for_bit(self):
        first, second = self.run_once(), self.run_once()
        assert first.report.shard_hashes == second.report.shard_hashes
        assert first.report.sha256 == second.report.sha256
        assert (
            first.report.stats.counters_dict()
            == second.report.stats.counters_dict()
        )

    def test_different_seed_changes_the_digest(self):
        assert self.run_once(seed=1).report.sha256 != self.run_once(
            seed=2
        ).report.sha256

    def test_quota_refusals_visible_in_aggregated_report(self):
        report = self.run_once().report
        assert report.quota_rejected > 0
        starved = {t.tenant_id: t for t in report.tenants}["starved"]
        assert starved.quota_rejected > 0
        assert starved.admitted <= 5
        assert f"quota refusals: {report.quota_rejected}" in report.render()
        assert report.as_dict()["tenants"]["starved"]["quota_rejected"] > 0

    def test_merged_stats_equal_tenant_sums(self):
        report = self.run_once().report
        assert report.stats.submitted == sum(
            t.submitted for t in report.tenants
        )
        assert report.stats.completed == sum(
            t.completed for t in report.tenants
        )

    def test_merged_trace_carries_fleet_metadata(self):
        report = self.run_once().report
        meta = report.trace.metadata["fleet"]
        assert meta["n_shards"] == 2
        assert meta["shard_hashes"] == report.shard_hashes


class TestFleetManagerLifecycle:
    def test_unknown_tenant_raises_on_routing(self):
        manager = FleetManager(fast_config(), default_registry(4))
        with pytest.raises(UnknownTenantError):
            manager.shard_for("nobody")

    def test_finish_is_single_shot(self):
        manager = FleetManager(fast_config(), default_registry(4))
        manager.finish()
        with pytest.raises(RuntimeError):
            manager.finish()
        shard = manager.shard_for(manager.registry.tenant_ids[0])
        _, jobs = shard.synthesize_jobs(1)
        with pytest.raises(RuntimeError):
            manager.submit(manager.registry.tenant_ids[0], jobs)

    def test_shard_seeds_are_distinct_substreams(self):
        config = fast_config(n_shards=4)
        seeds = [config.shard_seed(i) for i in range(4)]
        assert len(set(seeds)) == 4
        assert seeds == [fast_config(n_shards=4).shard_seed(i) for i in range(4)]
