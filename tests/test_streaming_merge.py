"""Unit tests for cross-shard merging of streaming SLA stats.

The fleet's aggregated report is only hashable because merging per-shard
:class:`StreamingSLAStats` is deterministic: counters merge exactly, and
the quantile reservoirs merge through a seeded weighted draw. These tests
pin both halves — exactness where the contract promises it, and
bit-reproducibility where it promises only that.
"""

from __future__ import annotations

import random

from repro.metrics.streaming import ReservoirSampler, StreamingSLAStats
from repro.sim.tracing import JobRecord


def record(job_id: int, response_s: float, promise_s: float) -> JobRecord:
    return JobRecord(
        job_id=job_id,
        batch_id=1,
        arrival_time=100.0,
        input_mb=1.0,
        output_mb=1.0,
        completion_time=100.0 + response_s,
        promise_s=promise_s,
    )


def feed(stats: StreamingSLAStats, responses: list[float], promise_s: float) -> None:
    for i, response_s in enumerate(responses):
        stats.on_admission("accept")
        stats.on_complete(record(i + 1, response_s, promise_s))


# ----------------------------------------------------------------------
# ReservoirSampler.merge
# ----------------------------------------------------------------------
class TestReservoirMerge:
    def test_merge_is_exact_when_union_fits(self):
        a = ReservoirSampler(capacity=16, seed=1)
        b = ReservoirSampler(capacity=16, seed=2)
        for v in (1.0, 2.0, 3.0):
            a.add(v)
        for v in (10.0, 20.0):
            b.add(v)
        a.merge(b)
        assert a.values == [1.0, 2.0, 3.0, 10.0, 20.0]
        assert a.n_seen == 5

    def test_merge_with_empty_other_is_a_no_op(self):
        a = ReservoirSampler(capacity=4, seed=1)
        for v in (1.0, 2.0):
            a.add(v)
        before = a.values
        a.merge(ReservoirSampler(capacity=4, seed=9))
        assert a.values == before
        assert a.n_seen == 2

    def test_overflowing_merge_keeps_capacity_and_total_count(self):
        a = ReservoirSampler(capacity=8, seed=1)
        b = ReservoirSampler(capacity=8, seed=2)
        for i in range(50):
            a.add(float(i))
            b.add(float(100 + i))
        a.merge(b)
        assert len(a.values) == 8
        assert a.n_seen == 100
        # Every retained value came from one of the two input samples.
        assert all(v < 50 or v >= 100 for v in a.values)

    def test_overflowing_merge_is_bit_reproducible(self):
        def build() -> ReservoirSampler:
            a = ReservoirSampler(capacity=8, seed=1)
            b = ReservoirSampler(capacity=8, seed=2)
            rng = random.Random(7)
            for _ in range(200):
                a.add(rng.random())
                b.add(rng.random())
            a.merge(b)
            return a

        first, second = build(), build()
        assert first.values == second.values
        assert first.n_seen == second.n_seen

    def test_merge_seed_depends_on_prior_counts(self):
        """Same retained values, different histories -> independent draws.

        The merge RNG is seeded from both samplers' seeds *and* counts, so
        the draw cannot silently correlate across different stream volumes.
        """

        def build(extra: int) -> list[float]:
            a = ReservoirSampler(capacity=4, seed=1)
            b = ReservoirSampler(capacity=4, seed=2)
            rng = random.Random(3)
            for _ in range(40 + extra):
                a.add(rng.random())
            for _ in range(40):
                b.add(rng.random())
            a.merge(b)
            return a.values

        assert build(0) != build(25)


# ----------------------------------------------------------------------
# StreamingSLAStats.merge
# ----------------------------------------------------------------------
class TestStatsMerge:
    def test_counters_merge_exactly(self):
        a, b = StreamingSLAStats(), StreamingSLAStats()
        feed(a, [10.0, 20.0, 200.0], promise_s=60.0)
        feed(b, [5.0, 400.0], promise_s=60.0)
        a.on_admission("reject", "quota")
        b.on_admission("reject", "quota")
        b.on_admission("reject", "slack")
        b.on_admission("accept_degraded")
        a.on_penalty(3.5)
        b.on_penalty(1.25)

        merged = StreamingSLAStats()
        merged.merge(a).merge(b)
        assert merged.submitted == a.submitted + b.submitted
        assert merged.completed == 5
        assert merged.sla_met == 3
        assert merged.sla_violated == 2
        assert merged.accepted_degraded == 1
        assert merged.rejections_by_reason == {"quota": 2, "slack": 1}
        assert merged.response_sum_s == a.response_sum_s + b.response_sum_s
        assert merged.penalty_usd == 4.75
        assert merged.penalties_accrued == 2

    def test_merged_attainment_matches_union_stream(self):
        a, b = StreamingSLAStats(), StreamingSLAStats()
        union = StreamingSLAStats()
        feed(a, [10.0, 100.0], promise_s=50.0)
        feed(b, [20.0, 30.0], promise_s=50.0)
        feed(union, [10.0, 100.0, 20.0, 30.0], promise_s=50.0)
        merged = StreamingSLAStats()
        merged.merge(a).merge(b)
        assert merged.attainment == union.attainment
        assert merged.mean_response_s == union.mean_response_s

    def test_merge_in_fixed_order_is_bit_reproducible(self):
        def build() -> StreamingSLAStats:
            shards = []
            for k in range(3):
                s = StreamingSLAStats(reservoir_seed=k)
                rng = random.Random(k)
                feed(s, [300.0 * rng.random() for _ in range(200)], 60.0)
                shards.append(s)
            total = StreamingSLAStats(reservoir_seed=99)
            for s in shards:
                total += s
            return total

        first, second = build(), build()
        assert first.counters_dict() == second.counters_dict()
        for q in (50, 90, 99):
            assert first.response_percentile(q) == second.response_percentile(q)

    def test_iadd_returns_merged_self(self):
        a, b = StreamingSLAStats(), StreamingSLAStats()
        feed(b, [1.0], promise_s=10.0)
        before = a
        a += b
        assert a is before
        assert a.completed == 1

    def test_counters_dict_tracks_reservoir_volume(self):
        a, b = StreamingSLAStats(), StreamingSLAStats()
        feed(a, [1.0, 2.0], promise_s=10.0)
        feed(b, [3.0], promise_s=10.0)
        a.merge(b)
        assert a.counters_dict()["responses_seen"] == 3
