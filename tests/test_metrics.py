"""Metric tests: OO metric (Eqs. 3-6), SLAs (Eqs. 7-12), completion series."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import Placement
from repro.metrics.oo import (
    max_id_in_order,
    ordered_data_series,
    relative_oo_difference,
)
from repro.metrics.series import completion_series, in_order_waits, peak_stats
from repro.metrics.sla import (
    burst_ratio,
    burst_ratio_per_batch,
    ec_utilization,
    ic_utilization,
    makespan,
    sequential_time,
    speedup,
    summarize,
)
from repro.sim.tracing import JobRecord, RunTrace


def record(job_id, completion, output_mb=10.0, arrival=0.0, placement=Placement.IC,
           batch_id=0, sub_id=0, proc=10.0):
    return JobRecord(
        job_id=job_id, batch_id=batch_id, arrival_time=arrival,
        input_mb=output_mb * 2, output_mb=output_mb, placement=placement,
        sub_id=sub_id, true_proc_time=proc, est_proc_time=proc,
        completion_time=completion, exec_start=max(0.0, completion - proc),
        exec_end=completion, schedule_time=arrival,
    )


def make_trace(records, ic_busy=0.0, ec_busy=0.0, ic_m=8, ec_m=2, arrival=0.0):
    end = max((r.completion_time for r in records if r.completion_time), default=0.0)
    return RunTrace(
        records=list(records), arrival_time=arrival, end_time=end,
        ic_busy_time=ic_busy, ec_busy_time=ec_busy,
        ic_machines=ic_m, ec_machines=ec_m, scheduler_name="test",
    )


class TestMaxIdInOrder:
    def test_strict_order_stops_at_first_gap(self):
        completed = np.array([True, True, False, True])
        assert max_id_in_order(completed, tolerance=0) == 2

    def test_tolerance_skips_gaps(self):
        completed = np.array([True, True, False, True])
        # id 4: 4 - 1 = 3 <= |J_4t| = 3 -> ok.
        assert max_id_in_order(completed, tolerance=1) == 4

    def test_nothing_completed(self):
        assert max_id_in_order(np.zeros(5, dtype=bool), tolerance=0) == 0
        assert max_id_in_order(np.zeros(5, dtype=bool), tolerance=3) == 0

    def test_empty(self):
        assert max_id_in_order(np.array([], dtype=bool), tolerance=0) == 0

    def test_all_completed(self):
        assert max_id_in_order(np.ones(7, dtype=bool), tolerance=0) == 7

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            max_id_in_order(np.ones(3, dtype=bool), tolerance=-1)

    def test_paper_worked_example(self):
        """tolerance 0 means every job with id < i must have completed."""
        # Jobs 1,3,4 done; 2 missing.
        completed = np.array([True, False, True, True])
        assert max_id_in_order(completed, 0) == 1
        assert max_id_in_order(completed, 1) == 4


class TestOrderedDataSeries:
    def trace(self):
        # Completions: 1@10, 2@30, 3@20 (3 completes before 2!), 4@40.
        return make_trace([
            record(1, 10.0, output_mb=5.0),
            record(2, 30.0, output_mb=7.0),
            record(3, 20.0, output_mb=11.0),
            record(4, 40.0, output_mb=13.0),
        ])

    def test_strict_series_hand_checked(self):
        s = ordered_data_series(self.trace(), tolerance=0, sampling_interval=10.0,
                                start=0.0, end=40.0)
        assert s.times.tolist() == [0.0, 10.0, 20.0, 30.0, 40.0]
        # t=10: job1 -> 5. t=20: jobs1,3 done but 2 missing -> m=1 -> 5.
        # t=30: 1,2,3 -> 23. t=40: all -> 36.
        assert s.ordered_mb.tolist() == [0.0, 5.0, 5.0, 23.0, 36.0]
        assert s.max_in_order_id.tolist() == [0, 1, 1, 3, 4]

    def test_tolerance_unblocks_stragglers(self):
        s = ordered_data_series(self.trace(), tolerance=1, sampling_interval=10.0,
                                start=0.0, end=40.0)
        # t=20: ids {1,3} done; id3: 3-1=2 <= |{1,3}|=2 -> m=3; o = 5+11.
        assert s.ordered_mb.tolist() == [0.0, 5.0, 16.0, 23.0, 36.0]

    def test_final_mb_is_total_output(self):
        s = ordered_data_series(self.trace(), tolerance=0, sampling_interval=10.0)
        assert s.final_mb == pytest.approx(36.0)

    def test_empty_trace(self):
        s = ordered_data_series(make_trace([record(1, 1.0)]).records[:0])
        assert len(s.times) == 0 and s.area() == 0.0

    def test_chunked_records_renumbered_by_key(self):
        recs = [
            record(1, 10.0, output_mb=5.0),
            record(2, 12.0, output_mb=3.0, sub_id=1),
            record(2, 50.0, output_mb=3.0, sub_id=2),
            record(3, 20.0, output_mb=7.0),
        ]
        s = ordered_data_series(make_trace(recs), tolerance=0,
                                sampling_interval=10.0, start=0.0, end=50.0)
        # At t=20: units 1, 2.1 done, 2.2 missing -> blocked at renumbered
        # id 2 -> 8 MB; job 3's 7MB held back until 2.2 lands at t=50.
        assert s.ordered_mb[2] == pytest.approx(8.0)
        assert s.ordered_mb[-1] == pytest.approx(18.0)

    def test_area_monotone_in_tolerance(self):
        t0 = ordered_data_series(self.trace(), tolerance=0, sampling_interval=5.0,
                                 start=0.0, end=40.0)
        t2 = ordered_data_series(self.trace(), tolerance=2, sampling_interval=5.0,
                                 start=0.0, end=40.0)
        assert t2.area() >= t0.area()

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            ordered_data_series(self.trace(), sampling_interval=0.0)

    @given(
        st.lists(st.floats(min_value=1.0, max_value=1000.0), min_size=1, max_size=30),
        st.integers(min_value=0, max_value=5),
    )
    @settings(max_examples=60, deadline=None)
    def test_o_t_nondecreasing_in_time(self, completions, tol):
        recs = [record(i + 1, c) for i, c in enumerate(completions)]
        s = ordered_data_series(make_trace(recs), tolerance=tol,
                                sampling_interval=25.0, start=0.0)
        assert np.all(np.diff(s.ordered_mb) >= -1e-9)
        assert np.all(np.diff(s.max_in_order_id) >= 0)

    @given(
        st.lists(st.floats(min_value=1.0, max_value=1000.0), min_size=1, max_size=30),
        st.integers(min_value=0, max_value=4),
    )
    @settings(max_examples=60, deadline=None)
    def test_o_t_nondecreasing_in_tolerance(self, completions, tol):
        recs = [record(i + 1, c) for i, c in enumerate(completions)]
        lo = ordered_data_series(make_trace(recs), tolerance=tol,
                                 sampling_interval=25.0, start=0.0, end=1000.0)
        hi = ordered_data_series(make_trace(recs), tolerance=tol + 1,
                                 sampling_interval=25.0, start=0.0, end=1000.0)
        assert np.all(hi.ordered_mb >= lo.ordered_mb - 1e-9)


class TestRelativeDifference:
    def test_identical_series_zero(self):
        recs = [record(i, 10.0 * i) for i in range(1, 5)]
        a = ordered_data_series(make_trace(recs), sampling_interval=10.0,
                                start=0.0, end=40.0)
        rel = relative_oo_difference(a, a)
        assert np.allclose(rel, 0.0)

    def test_shorter_baseline_padded_with_plateau(self):
        recs = [record(i, 10.0 * i) for i in range(1, 5)]
        a = ordered_data_series(make_trace(recs), sampling_interval=10.0,
                                start=0.0, end=80.0)
        b = ordered_data_series(make_trace(recs), sampling_interval=10.0,
                                start=0.0, end=40.0)
        rel = relative_oo_difference(a, b)
        assert len(rel) == len(a.times)
        assert np.allclose(rel, 0.0)  # plateau equals the full output


class TestSLAFormulas:
    def test_makespan(self):
        trace = make_trace([record(1, 50.0), record(2, 120.0)], arrival=20.0)
        assert makespan(trace) == pytest.approx(100.0)

    def test_sequential_time_and_speedup(self):
        trace = make_trace([record(1, 50.0, proc=30.0), record(2, 100.0, proc=50.0)])
        assert sequential_time(trace) == pytest.approx(80.0)
        assert speedup(trace) == pytest.approx(80.0 / 100.0)
        assert sequential_time(trace, standard_speed=2.0) == pytest.approx(40.0)

    def test_speedup_degenerate(self):
        assert speedup(make_trace([])) == 0.0

    def test_utilization_eq9(self):
        trace = make_trace([record(1, 100.0)], ic_busy=400.0, ec_busy=50.0,
                           ic_m=8, ec_m=2)
        assert ic_utilization(trace) == pytest.approx(400.0 / (8 * 100.0))
        assert ec_utilization(trace) == pytest.approx(50.0 / (2 * 100.0))

    def test_burst_ratio_eq12(self):
        recs = [record(i, 10.0, placement=Placement.EC if i % 3 == 0 else Placement.IC)
                for i in range(1, 10)]
        assert burst_ratio(make_trace(recs)) == pytest.approx(3 / 9)

    def test_burst_ratio_per_batch_eq11(self):
        recs = [
            record(1, 10.0, batch_id=0, placement=Placement.EC),
            record(2, 10.0, batch_id=0, placement=Placement.IC),
            record(3, 10.0, batch_id=1, placement=Placement.IC),
        ]
        per = burst_ratio_per_batch(make_trace(recs))
        assert per == {0: 0.5, 1: 0.0}

    def test_summarize_consistency(self):
        recs = [record(i, 10.0 * i) for i in range(1, 6)]
        trace = make_trace(recs, ic_busy=100.0, ec_busy=10.0)
        s = summarize(trace)
        assert s.makespan_s == makespan(trace)
        assert s.n_jobs == 5
        assert s.burst_ratio == burst_ratio(trace)
        row = s.as_row()
        assert set(row) >= {"scheduler", "makespan_s", "speedup", "ic_util_%"}

    def test_invalid_standard_speed(self):
        with pytest.raises(ValueError):
            sequential_time(make_trace([record(1, 1.0)]), standard_speed=0.0)


class TestCompletionSeries:
    def test_series_ordering(self):
        recs = [record(2, 30.0), record(1, 10.0), record(3, 20.0)]
        cs = completion_series(make_trace(recs))
        assert cs.ids.tolist() == [1, 2, 3]
        assert cs.completions.tolist() == [10.0, 30.0, 20.0]

    def test_in_order_waits_hand_checked(self):
        recs = [record(1, 10.0), record(2, 30.0), record(3, 20.0), record(4, 25.0)]
        cs = completion_series(make_trace(recs))
        waits = in_order_waits(cs)
        # Job 2 stalls the consumer by 20s; jobs 3,4 are valleys (ready early).
        assert waits.tolist() == [0.0, 20.0, 0.0, 0.0]

    def test_peak_stats(self):
        recs = [record(1, 10.0), record(2, 30.0), record(3, 20.0), record(4, 25.0)]
        p = peak_stats(make_trace(recs), min_peak_s=1.0)
        assert p.n_peaks == 1
        assert p.total_wait_s == pytest.approx(20.0)
        assert p.max_wait_s == pytest.approx(20.0)
        assert p.n_valleys == 2

    def test_empty(self):
        p = peak_stats(make_trace([record(1, 1.0)]).records[:0])
        assert p.n_peaks == 0 and p.total_wait_s == 0.0

    def test_in_order_completions_have_no_valleys(self):
        recs = [record(i, 10.0 * i) for i in range(1, 6)]
        p = peak_stats(make_trace(recs))
        assert p.n_valleys == 0


class TestTracing:
    def test_record_validation_catches_time_travel(self):
        r = record(1, 10.0)
        r.exec_start = 50.0  # after completion
        with pytest.raises(ValueError):
            r.validate()

    def test_trace_validation_catches_duplicate_keys(self):
        trace = make_trace([record(1, 10.0), record(1, 20.0)])
        with pytest.raises(ValueError):
            trace.validate()

    def test_response_and_transfer_time(self):
        r = record(1, 100.0, arrival=10.0)
        r.upload_start, r.upload_end = 10.0, 30.0
        r.download_start, r.download_end = 80.0, 100.0
        assert r.response_time == pytest.approx(90.0)
        assert r.transfer_time == pytest.approx(40.0)

    def test_json_roundtrip(self, tmp_path):
        trace = make_trace([record(1, 10.0), record(2, 20.0)], ic_busy=30.0)
        path = tmp_path / "trace.json"
        trace.to_json(path)
        back = RunTrace.from_json(path)
        assert back.makespan == trace.makespan
        assert len(back.records) == 2
        assert back.records[0].completion_time == 10.0

    def test_csv_export(self, tmp_path):
        trace = make_trace([record(1, 10.0)])
        path = tmp_path / "trace.csv"
        trace.to_csv(path)
        text = path.read_text()
        assert "job_id" in text and "placement" in text

    def test_by_placement(self):
        recs = [record(1, 10.0), record(2, 20.0, placement=Placement.EC)]
        trace = make_trace(recs)
        assert len(trace.by_placement(Placement.EC)) == 1


class TestMergeTraces:
    def test_merge_renumbers_and_accumulates(self):
        from repro.sim.tracing import merge_traces

        t1 = make_trace([record(1, 10.0), record(2, 20.0)], ic_busy=30.0, ic_m=4)
        t2 = make_trace([record(1, 15.0)], ic_busy=15.0, ic_m=2, ec_busy=5.0)
        merged = merge_traces([t1, t2])
        assert len(merged.records) == 3
        ids = sorted(r.job_id for r in merged.records)
        assert ids == [1, 2, 3]  # second trace's job renumbered past the first
        assert merged.ic_busy_time == pytest.approx(45.0)
        assert merged.ec_busy_time == pytest.approx(5.0)
        assert merged.ic_machines == 4  # max of the pools

    def test_merge_empty(self):
        from repro.sim.tracing import merge_traces

        merged = merge_traces([])
        assert len(merged.records) == 0
