"""Elastic EC scaling tests (Section V.B.4 future work)."""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentSpec
from repro.experiments.scaling import (
    ScalingSweepResult,
    ec_instances_for_saturation,
    ec_scaling_sweep,
)
from repro.sim.environment import SystemConfig
from repro.workload.distributions import Bucket


class TestSaturationKnee:
    def test_download_bound_hand_checked(self):
        # 5 MB/s drain, 100 s/job, 50 MB output -> 5*100/50 = 10 machines;
        # upload side: 100 MB in at 20 MB/s -> 20*100/100 = 20 -> download binds.
        n = ec_instances_for_saturation(
            download_mbps=5.0, upload_mbps=20.0, mean_proc_time_s=100.0,
            mean_input_mb=100.0, mean_output_mb=50.0,
        )
        assert n == 10

    def test_upload_bound_when_inputs_dominate(self):
        n = ec_instances_for_saturation(
            download_mbps=100.0, upload_mbps=2.0, mean_proc_time_s=100.0,
            mean_input_mb=200.0, mean_output_mb=10.0,
        )
        assert n == 1  # 2*100/200 = 1

    def test_faster_machines_need_fewer(self):
        slow = ec_instances_for_saturation(5.0, 20.0, 100.0, 100.0, 50.0, ec_speed=1.0)
        fast = ec_instances_for_saturation(5.0, 20.0, 100.0, 100.0, 50.0, ec_speed=2.0)
        assert fast < slow

    def test_bounds(self):
        assert ec_instances_for_saturation(1000.0, 1000.0, 1000.0, 1.0, 1.0,
                                           max_instances=8) == 8
        assert ec_instances_for_saturation(0.001, 0.001, 0.001, 100.0, 100.0) == 1

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            ec_instances_for_saturation(0.0, 1.0, 1.0, 1.0, 1.0)


class TestSweep:
    @pytest.fixture(scope="class")
    def sweep(self) -> ScalingSweepResult:
        spec = ExperimentSpec(
            bucket=Bucket.LARGE, n_batches=3, mean_jobs_per_batch=10,
            system=SystemConfig(seed=13),
        )
        return ec_scaling_sweep(spec, ec_sizes=(1, 2, 4))

    def test_structure(self, sweep):
        assert sweep.ec_sizes == [1, 2, 4]
        assert len(sweep.makespans) == 3
        assert sweep.predicted_knee >= 1
        assert "knee" in sweep.render() or str(sweep.predicted_knee) in sweep.render()

    def test_ec_util_decreases_with_pool_size(self, sweep):
        """Past saturation, extra machines only dilute utilization."""
        assert sweep.ec_utils[0] >= sweep.ec_utils[-1]

    def test_diminishing_returns(self, sweep):
        """Growing the pool beyond the knee buys (almost) nothing."""
        first_step = sweep.makespans[0] - sweep.makespans[1]
        last_step = sweep.makespans[1] - sweep.makespans[2]
        assert last_step <= max(first_step, 1.0) + 30.0
