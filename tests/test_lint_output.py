"""Tests for lint output formats (JSON, SARIF) and the baseline file.

The SARIF test validates against a vendored structural subset of the
SARIF 2.1.0 schema — the properties code hosts actually require for
ingestion (version/runs/tool.driver/results shape, level enum, region
bounds) — via ``jsonschema``. The baseline tests exercise the
round-trip that matters operationally: park findings, re-run clean,
fix code, see the entry go stale, regenerate.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import jsonschema
import pytest

from repro.analysis.baseline import (
    Baseline,
    DEFAULT_BASELINE_NAME,
    discover_baseline,
)
from repro.analysis.lint import Severity, Violation, run_lint
from repro.analysis.output import (
    SARIF_VERSION,
    render_json,
    render_sarif,
)

#: Structural subset of the SARIF 2.1.0 schema: the fields GitHub-style
#: ingestion validates. Mirrors sarif-schema-2.1.0.json constraints for
#: the subset of properties repro-lint emits.
SARIF_SUBSET_SCHEMA = {
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "$schema": {"type": "string", "format": "uri"},
        "version": {"const": "2.1.0"},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool", "results"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string", "minLength": 1},
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                            "properties": {
                                                "id": {"type": "string"},
                                                "shortDescription": {
                                                    "type": "object",
                                                    "required": ["text"],
                                                },
                                                "defaultConfiguration": {
                                                    "type": "object",
                                                    "properties": {
                                                        "level": {
                                                            "enum": [
                                                                "none",
                                                                "note",
                                                                "warning",
                                                                "error",
                                                            ]
                                                        }
                                                    },
                                                },
                                            },
                                        },
                                    },
                                },
                            }
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["message"],
                            "properties": {
                                "ruleId": {"type": "string"},
                                "ruleIndex": {
                                    "type": "integer",
                                    "minimum": 0,
                                },
                                "level": {
                                    "enum": ["none", "note", "warning", "error"]
                                },
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                    "properties": {
                                        "text": {"type": "string"}
                                    },
                                },
                                "locations": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "properties": {
                                            "physicalLocation": {
                                                "type": "object",
                                                "properties": {
                                                    "artifactLocation": {
                                                        "type": "object",
                                                        "properties": {
                                                            "uri": {
                                                                "type": "string"
                                                            }
                                                        },
                                                    },
                                                    "region": {
                                                        "type": "object",
                                                        "properties": {
                                                            "startLine": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            },
                                                            "startColumn": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            },
                                                        },
                                                    },
                                                },
                                            }
                                        },
                                    },
                                },
                                "partialFingerprints": {
                                    "type": "object",
                                    "additionalProperties": {"type": "string"},
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}

BAD_MODULE = textwrap.dedent(
    """
    import time

    def wait(delay_usd):
        t = time.time()
        return t + delay_usd
    """
)


def lint_tree(tmp_path: Path, source: str = BAD_MODULE) -> list[Violation]:
    target = tmp_path / "repro" / "sim" / "bad.py"
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source)
    return run_lint([tmp_path])


# ----------------------------------------------------------------------
# SARIF
# ----------------------------------------------------------------------
class TestSarif:
    def test_document_validates_against_schema(self, tmp_path):
        violations = lint_tree(tmp_path)
        assert violations, "fixture must produce findings"
        document = json.loads(render_sarif(violations))
        jsonschema.validate(document, SARIF_SUBSET_SCHEMA)

    def test_empty_run_still_validates(self):
        document = json.loads(render_sarif([]))
        jsonschema.validate(document, SARIF_SUBSET_SCHEMA)
        assert document["version"] == SARIF_VERSION
        assert document["runs"][0]["results"] == []

    def test_rules_metadata_covers_results(self, tmp_path):
        violations = lint_tree(tmp_path)
        document = json.loads(render_sarif(violations))
        run = document["runs"][0]
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert rule_ids == sorted(rule_ids)
        for result in run["results"]:
            assert result["ruleId"] in rule_ids
            assert rule_ids[result["ruleIndex"]] == result["ruleId"]

    def test_results_carry_baseline_fingerprints(self, tmp_path):
        violations = lint_tree(tmp_path)
        document = json.loads(render_sarif(violations))
        fingerprints = {
            result["partialFingerprints"]["reproLint/v1"]
            for result in document["runs"][0]["results"]
        }
        assert fingerprints == {v.fingerprint for v in violations}


# ----------------------------------------------------------------------
# JSON
# ----------------------------------------------------------------------
class TestJson:
    def test_counts_split_severities(self, tmp_path):
        violations = lint_tree(
            tmp_path,
            BAD_MODULE + "x = 1  # repro: allow[MUT001] stale suppression\n",
        )
        payload = json.loads(render_json(violations))
        summary = payload["summary"]
        assert summary["total"] == len(violations)
        assert summary["errors"] == sum(
            1 for v in violations if v.severity == Severity.ERROR
        )
        assert summary["warnings"] >= 1  # the SUP002 stale-suppression warning
        assert summary["errors"] + summary["warnings"] == summary["total"]

    def test_findings_are_complete_records(self, tmp_path):
        payload = json.loads(render_json(lint_tree(tmp_path)))
        for finding in payload["findings"]:
            assert finding["code"]
            assert finding["path"].endswith("bad.py")
            assert finding["line"] >= 1
            assert finding["severity"] in ("error", "warning")
            assert finding["fingerprint"]


# ----------------------------------------------------------------------
# Baseline round-trips
# ----------------------------------------------------------------------
class TestBaseline:
    def test_park_then_clean_run(self, tmp_path):
        violations = lint_tree(tmp_path)
        baseline = Baseline.from_violations(violations)
        path = baseline.write(tmp_path / DEFAULT_BASELINE_NAME)
        reloaded = Baseline.load(path)
        delta = reloaded.apply(violations)
        assert delta.new == []
        assert len(delta.suppressed) == len(violations)
        assert delta.stale == []

    def test_new_finding_is_not_masked(self, tmp_path):
        violations = lint_tree(tmp_path)
        baseline = Baseline.from_violations(violations)
        worse = lint_tree(
            tmp_path,
            BAD_MODULE + "\ndef drift(cost_usd, wall_s):\n    return cost_usd + wall_s\n",
        )
        delta = baseline.apply(worse)
        assert len(delta.new) == 1
        assert delta.new[0].code == "UNI002"

    def test_fixed_finding_goes_stale(self, tmp_path):
        violations = lint_tree(tmp_path)
        baseline = Baseline.from_violations(violations)
        clean = lint_tree(tmp_path, "def ok(delay_s):\n    return delay_s\n")
        delta = baseline.apply(clean)
        assert clean == [] and delta.new == []
        assert len(delta.stale) == len(violations)
        # Regenerating drops the paid-off entries.
        regenerated = Baseline.from_violations(clean)
        assert len(regenerated) == 0

    def test_fingerprints_survive_unrelated_edits(self, tmp_path):
        violations = lint_tree(tmp_path)
        baseline = Baseline.from_violations(violations)
        shifted = lint_tree(tmp_path, "\n\n# a comment\n" + BAD_MODULE)
        delta = baseline.apply(shifted)
        assert delta.new == [] and delta.stale == []

    def test_write_is_deterministic_and_sorted(self, tmp_path):
        violations = lint_tree(tmp_path)
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        Baseline.from_violations(violations).write(a)
        Baseline.from_violations(list(reversed(violations))).write(b)
        assert a.read_text() == b.read_text()

    def test_load_rejects_non_baseline_json(self, tmp_path):
        bogus = tmp_path / "x.json"
        bogus.write_text('{"not": "a baseline"}')
        with pytest.raises(ValueError, match="findings"):
            Baseline.load(bogus)

    def test_discover_walks_up(self, tmp_path):
        (tmp_path / DEFAULT_BASELINE_NAME).write_text('{"findings": []}')
        nested = tmp_path / "src" / "repro" / "sim"
        nested.mkdir(parents=True)
        assert discover_baseline(nested) == tmp_path / DEFAULT_BASELINE_NAME
        assert discover_baseline(Path("/")) is None
