"""Heterogeneous machine pools and Poisson batch arrivals."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.greedy import GreedyScheduler
from repro.sim.cluster import Cluster
from repro.sim.engine import Simulator
from repro.sim.environment import CloudBurstEnvironment, SystemConfig
from repro.sim.validation import validate_trace
from repro.workload.distributions import Bucket
from repro.workload.generator import WorkloadConfig, WorkloadGenerator


class TestHeterogeneousCluster:
    def test_per_machine_speeds(self):
        sim = Simulator()
        c = Cluster(sim, "c", n_machines=0, speeds=[1.0, 2.0, 4.0])
        assert c.n_machines == 3
        assert [m.speed for m in c.machines] == [1.0, 2.0, 4.0]
        assert c.mean_speed == pytest.approx(7.0 / 3.0)

    def test_fast_machine_finishes_sooner(self):
        sim = Simulator()
        c = Cluster(sim, "c", n_machines=0, speeds=[1.0, 4.0])
        done = {}
        c.submit("slow-side", 40.0, lambda i, m: done.setdefault(i, sim.now))
        c.submit("fast-side", 40.0, lambda i, m: done.setdefault(i, sim.now))
        sim.run()
        # Dispatch order: first job -> machine 0 (speed 1, 40s), second ->
        # machine 1 (speed 4, 10s).
        assert done["fast-side"] == pytest.approx(10.0)
        assert done["slow-side"] == pytest.approx(40.0)

    def test_invalid_speeds(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Cluster(sim, "c", 1, speeds=[1.0, 0.0])
        with pytest.raises(ValueError):
            Cluster(sim, "c", 1, speeds=[])


class TestHeterogeneousEnvironment:
    def run_env(self, speeds):
        cfg = SystemConfig(
            ic_machines=4, ec_machines=2, seed=23,
            ic_machine_speeds=speeds,
        )
        gen = WorkloadGenerator(bucket=Bucket.UNIFORM, seed=6)
        batches = gen.generate(
            WorkloadConfig(n_batches=2, mean_jobs_per_batch=8, seed=6)
        )
        env = CloudBurstEnvironment(cfg)
        env.pretrain_qrsm(*gen.sample_training_set(150))
        return env.run(batches, GreedyScheduler(env.estimator))

    def test_mixed_pool_run_is_clean(self):
        trace = self.run_env((0.5, 1.0, 1.0, 2.0, 2.0))
        assert all(r.completed for r in trace.records)
        assert validate_trace(trace) == []
        assert trace.ic_machines == 5  # speeds tuple sets the pool size

    def test_faster_pool_finishes_sooner(self):
        slow = self.run_env((1.0, 1.0, 1.0, 1.0))
        fast = self.run_env((2.0, 2.0, 2.0, 2.0))
        assert fast.makespan < slow.makespan


class TestPoissonArrivals:
    def test_fixed_arrivals_equally_spaced(self):
        batches = WorkloadGenerator(seed=4).generate(
            WorkloadConfig(n_batches=5, seed=4, arrival_process="fixed")
        )
        gaps = np.diff([b.arrival_time for b in batches])
        assert np.allclose(gaps, 180.0)

    def test_poisson_arrivals_are_irregular_with_right_mean(self):
        batches = WorkloadGenerator(seed=4).generate(
            WorkloadConfig(n_batches=300, seed=4, arrival_process="poisson")
        )
        gaps = np.diff([b.arrival_time for b in batches])
        assert gaps.std() > 60.0  # genuinely exponential, not constant
        assert np.mean(gaps) == pytest.approx(180.0, rel=0.15)
        assert np.all(gaps >= 0)

    def test_invalid_process_rejected(self):
        with pytest.raises(ValueError):
            WorkloadConfig(arrival_process="weibull")

    def test_poisson_workload_runs_clean(self):
        gen = WorkloadGenerator(bucket=Bucket.UNIFORM, seed=8)
        batches = gen.generate(
            WorkloadConfig(n_batches=3, mean_jobs_per_batch=6, seed=8,
                           arrival_process="poisson")
        )
        env = CloudBurstEnvironment(SystemConfig(ic_machines=4, ec_machines=2, seed=9))
        env.pretrain_qrsm(*gen.sample_training_set(150))
        trace = env.run(batches, GreedyScheduler(env.estimator))
        assert validate_trace(trace) == []
