"""Integration tests of the full simulated environment (Fig. 5 pipeline)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common import Placement
from repro.core.greedy import GreedyScheduler
from repro.core.ic_only import ICOnlyScheduler
from repro.core.order_preserving import OrderPreservingScheduler
from repro.sim.environment import CloudBurstEnvironment, SystemConfig
from repro.workload.distributions import Bucket
from repro.workload.generator import WorkloadConfig, WorkloadGenerator


def run_env(scheduler_cls, config=None, workload=None, seed=5, **sched_kw):
    config = config or SystemConfig(ic_machines=4, ec_machines=2, seed=77)
    gen = WorkloadGenerator(bucket=Bucket.UNIFORM, seed=seed)
    batches = workload or gen.generate(
        WorkloadConfig(n_batches=2, mean_jobs_per_batch=6, seed=seed)
    )
    env = CloudBurstEnvironment(config)
    env.pretrain_qrsm(*gen.sample_training_set(200))
    scheduler = scheduler_cls(env.estimator, **sched_kw)
    return env.run(batches, scheduler), batches, env


class TestLifecycle:
    def test_every_job_completes_exactly_once(self):
        trace, batches, _ = run_env(ICOnlyScheduler)
        n_jobs = sum(len(b) for b in batches)
        assert len(trace.records) == n_jobs
        assert all(r.completed for r in trace.records)
        trace.validate()  # timestamps monotone, keys unique

    def test_chunked_run_completes_all_units(self):
        trace, batches, _ = run_env(OrderPreservingScheduler)
        assert all(r.completed for r in trace.records)
        trace.validate()
        # Chunk units cover their parents' ids.
        parent_ids = {j.job_id for b in batches for j in b}
        assert {r.job_id for r in trace.records} == parent_ids

    def test_ec_jobs_traverse_full_pipeline(self):
        trace, _, _ = run_env(GreedyScheduler)
        ec = trace.by_placement(Placement.EC)
        if not ec:
            pytest.skip("no jobs bursted in this configuration")
        for r in ec:
            assert r.upload_start is not None
            assert r.upload_end >= r.upload_start
            assert r.exec_start >= r.upload_end
            assert r.exec_end > r.exec_start
            assert r.download_end >= r.download_start >= r.exec_end
            assert r.completion_time == r.download_end

    def test_ic_jobs_skip_transfer_stages(self):
        trace, _, _ = run_env(ICOnlyScheduler)
        for r in trace.records:
            assert r.upload_start is None
            assert r.download_start is None
            assert r.exec_end == r.completion_time

    def test_machine_attribution(self):
        trace, _, _ = run_env(ICOnlyScheduler)
        assert all(r.machine is not None and r.machine.startswith("ic-")
                   for r in trace.records)


class TestAccounting:
    def test_busy_time_bounded_by_pool_capacity(self):
        trace, _, _ = run_env(GreedyScheduler)
        horizon = trace.end_time - trace.arrival_time
        assert 0 < trace.ic_busy_time <= trace.ic_machines * horizon + 1e-6
        assert 0 <= trace.ec_busy_time <= trace.ec_machines * horizon + 1e-6

    def test_ic_busy_time_equals_processing_time_for_ic_only(self):
        trace, _, _ = run_env(ICOnlyScheduler)
        total_proc = sum(r.true_proc_time for r in trace.records)
        assert trace.ic_busy_time == pytest.approx(total_proc, rel=1e-6)

    def test_makespan_at_least_longest_job(self):
        trace, _, _ = run_env(ICOnlyScheduler)
        assert trace.makespan >= max(r.true_proc_time for r in trace.records)

    def test_bandwidth_samples_recorded(self):
        trace, _, _ = run_env(GreedyScheduler)
        assert len(trace.bandwidth_samples) > 0


class TestDeterminism:
    def test_same_seed_same_trace(self):
        t1, _, _ = run_env(GreedyScheduler)
        t2, _, _ = run_env(GreedyScheduler)
        c1 = [r.completion_time for r in t1.records]
        c2 = [r.completion_time for r in t2.records]
        assert c1 == c2
        assert [r.placement for r in t1.records] == [r.placement for r in t2.records]

    def test_different_system_seed_changes_network_draws(self):
        t1, _, _ = run_env(GreedyScheduler, config=SystemConfig(
            ic_machines=4, ec_machines=2, seed=1))
        t2, _, _ = run_env(GreedyScheduler, config=SystemConfig(
            ic_machines=4, ec_machines=2, seed=2))
        # Probe measurements sample the stochastic capacity, so different
        # system seeds must yield different learned-bandwidth traces.
        assert t1.bandwidth_samples != t2.bandwidth_samples


class TestEstimationBoundary:
    def test_scheduler_estimates_differ_from_truth(self):
        """The QRSM estimate must not leak the hidden true time."""
        trace, _, _ = run_env(GreedyScheduler)
        diffs = [abs(r.est_proc_time - r.true_proc_time) for r in trace.records]
        assert np.mean(diffs) > 0.1  # noise guarantees a gap

    def test_qrsm_tuned_online(self):
        _, _, env = run_env(GreedyScheduler)
        # Pretraining 200 + one observation per completed job.
        assert env.qrsm.n_observations > 200


class TestSingleUse:
    def test_env_cannot_run_twice(self):
        trace, batches, env = run_env(ICOnlyScheduler)
        with pytest.raises(RuntimeError):
            env.run(batches, ICOnlyScheduler(env.estimator))


class TestRescheduling:
    def test_ic_pull_marks_rescheduled_jobs(self):
        config = SystemConfig(
            ic_machines=4, ec_machines=1, seed=3,
            enable_ic_pull=True,
            # Throttle the pipe so uploads queue and IC idles first.
            up_base_mbps=0.6, down_base_mbps=0.8,
        )
        trace, _, _ = run_env(GreedyScheduler, config=config)
        assert all(r.completed for r in trace.records)
        pulled = [r for r in trace.records if r.rescheduled]
        for r in pulled:
            assert r.placement == Placement.IC
            assert r.upload_start is None  # cancelled before upload began

    def test_ec_push_runs_clean(self):
        config = SystemConfig(
            ic_machines=2, ec_machines=2, seed=3, enable_ec_push=True,
            up_base_mbps=8.0, down_base_mbps=8.0,
        )
        trace, _, _ = run_env(OrderPreservingScheduler, config=config)
        assert all(r.completed for r in trace.records)
        trace.validate()

    def test_strategies_off_by_default(self):
        trace, _, _ = run_env(GreedyScheduler)
        assert not any(r.rescheduled for r in trace.records)


class TestConfigValidation:
    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig(ic_machines=0)
        with pytest.raises(ValueError):
            SystemConfig(up_base_mbps=0.0)
        with pytest.raises(ValueError):
            SystemConfig(start_hour=24.0)

    def test_start_hour_offsets_clock(self):
        config = SystemConfig(ic_machines=2, ec_machines=1, start_hour=6.0, seed=1)
        env = CloudBurstEnvironment(config)
        assert env.sim.now == pytest.approx(6 * 3600.0)


class TestSibsIntegration:
    def test_upload_queue_labels_recorded(self):
        """SIBS runs tag every bursted record with its size-interval queue."""
        from repro.core.bandwidth_splitting import SizeIntervalSplittingScheduler

        config = SystemConfig(ic_machines=4, ec_machines=2, seed=77)
        gen = WorkloadGenerator(bucket=Bucket.LARGE, seed=5)
        batches = gen.generate(
            WorkloadConfig(bucket=Bucket.LARGE, n_batches=3,
                           mean_jobs_per_batch=8, seed=5)
        )
        env = CloudBurstEnvironment(config)
        env.pretrain_qrsm(*gen.sample_training_set(200))
        trace = env.run(batches, SizeIntervalSplittingScheduler(env.estimator))
        bursted = [r for r in trace.records if r.placement == Placement.EC]
        assert bursted, "SIBS should burst on a loaded large bucket"
        labels = {r.upload_queue for r in bursted}
        assert labels <= {"upload-small", "upload-medium", "upload-large", None}
        assert any(l is not None for l in labels)

    def test_single_queue_label_for_plain_op(self):
        from repro.core.order_preserving import OrderPreservingScheduler

        config = SystemConfig(ic_machines=4, ec_machines=2, seed=77)
        gen = WorkloadGenerator(bucket=Bucket.LARGE, seed=5)
        batches = gen.generate(
            WorkloadConfig(bucket=Bucket.LARGE, n_batches=3,
                           mean_jobs_per_batch=8, seed=5)
        )
        env = CloudBurstEnvironment(config)
        env.pretrain_qrsm(*gen.sample_training_set(200))
        trace = env.run(batches, OrderPreservingScheduler(env.estimator))
        bursted = [r for r in trace.records if r.placement == Placement.EC]
        assert all(r.upload_queue in (None, "upload-all") for r in bursted)
