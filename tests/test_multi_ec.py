"""Multi-cloud bursting tests: SiteView, schedulers, environment sites."""

from __future__ import annotations

import pytest

from repro.common import Placement
from repro.core.base import ECSiteState
from repro.core.multi_ec import (
    MultiECGreedyScheduler,
    MultiECOrderPreservingScheduler,
    SiteView,
    site_views,
)
from repro.metrics.sla import summarize
from repro.sim.environment import CloudBurstEnvironment, ECSiteSpec, SystemConfig
from repro.workload.distributions import Bucket
from repro.workload.generator import WorkloadConfig, WorkloadGenerator

from tests.conftest import make_job, make_state
from tests.test_schedulers import StubEstimator


def state_with_sites(**kwargs):
    state = make_state(**kwargs)
    state.extra_sites.append(
        ECSiteState(
            name="provider-b",
            ec_free=[state.now, state.now],
            est_up_mbps=2.0,
            est_down_mbps=2.0,
            up_threads=4,
            down_threads=4,
            per_thread_mbps=0.5,
        )
    )
    return state


class TestSiteView:
    def test_primary_view_reads_flat_fields(self):
        state = make_state(now=5.0, ec_free=[7.0, 9.0], upload_backlog_mb=12.0)
        view = SiteView(state, 0)
        assert view.ec_free == [7.0, 9.0]
        assert view.upload_backlog_mb == 12.0
        assert view.up_rate == state.up_rate

    def test_extra_view_reads_site_state(self):
        state = state_with_sites(now=0.0)
        view = SiteView(state, 1)
        assert view.name == "provider-b"
        assert view.ec_free == [0.0, 0.0]

    def test_out_of_range_index(self):
        state = make_state()
        with pytest.raises(IndexError):
            SiteView(state, 1)

    def test_site_views_enumerates_all(self):
        state = state_with_sites()
        views = site_views(state)
        assert [v.index for v in views] == [0, 1]

    def test_ft_ec_matches_primary_estimator(self):
        """Site-0 view must agree with the flat-field estimator."""
        est = StubEstimator()
        state = make_state(now=0.0, ec_free=[0.0, 0.0], upload_backlog_mb=100.0)
        job = make_job(size_mb=100.0, proc_time=60.0, output_mb=40.0)
        via_view = SiteView(state, 0).ft_ec(job, 60.0)
        via_estimator = est.ft_ec(job, state, 60.0)
        assert via_view.completion == pytest.approx(via_estimator.completion)
        assert via_view.upload_end == pytest.approx(via_estimator.upload_end)

    def test_commit_primary_mutates_flat_fields(self):
        state = make_state(ec_free=[0.0])
        job = make_job(size_mb=50.0, output_mb=20.0)
        SiteView(state, 0).commit(job, ec_exec_end=100.0, completion=120.0)
        assert state.upload_backlog_mb == 50.0
        assert state.ec_free == [100.0]
        assert state.pending_completions[-1] == 120.0

    def test_commit_extra_mutates_site(self):
        state = state_with_sites()
        job = make_job(size_mb=50.0, output_mb=20.0)
        SiteView(state, 1).commit(job, ec_exec_end=100.0, completion=120.0)
        site = state.extra_sites[0]
        assert site.upload_backlog_mb == 50.0
        assert 100.0 in site.ec_free
        assert state.upload_backlog_mb == 0.0  # primary untouched

    def test_clone_deep_copies_sites(self):
        state = state_with_sites()
        clone = state.clone()
        clone.extra_sites[0].upload_backlog_mb = 99.0
        assert state.extra_sites[0].upload_backlog_mb == 0.0


class TestMultiSchedulers:
    def test_reduces_to_single_site_greedy(self):
        """With no extra sites, MultiGreedy == Greedy decisions."""
        from repro.core.greedy import GreedyScheduler

        jobs = [make_job(job_id=i, size_mb=10.0, proc_time=30.0, output_mb=5.0)
                for i in range(1, 7)]
        s1 = make_state(ic_free=[0.0], ec_free=[0.0],
                        est_up_mbps=10.0, est_down_mbps=10.0,
                        up_threads=20, down_threads=20)
        s2 = s1.clone()
        p_single = GreedyScheduler(StubEstimator()).plan(jobs, s1)
        p_multi = MultiECGreedyScheduler(StubEstimator()).plan(jobs, s2)
        assert [d.placement for d in p_single.decisions] == [
            d.placement for d in p_multi.decisions
        ]
        assert all(d.ec_site == 0 for d in p_multi.decisions)

    def test_overflows_to_second_site(self):
        """When the primary path saturates, bursts spill to provider B."""
        state = state_with_sites(
            ic_free=[10_000.0], ec_free=[0.0],
            est_up_mbps=10.0, est_down_mbps=10.0,
            up_threads=20, down_threads=20,
            pending_completions=[10_000.0],
        )
        state.extra_sites[0].est_up_mbps = 10.0
        state.extra_sites[0].est_down_mbps = 10.0
        state.extra_sites[0].up_threads = 20
        state.extra_sites[0].down_threads = 20
        jobs = [make_job(job_id=i, size_mb=50.0, proc_time=30.0, output_mb=20.0)
                for i in range(1, 11)]
        plan = MultiECGreedyScheduler(StubEstimator()).plan(jobs, state)
        sites = {d.ec_site for d in plan.decisions if d.placement == Placement.EC}
        assert sites == {0, 1}

    def test_multi_op_respects_slack(self):
        """Head of queue still never bursts, even with many sites."""
        state = state_with_sites(ic_free=[0.0, 0.0])
        jobs = [make_job(job_id=1, proc_time=30.0)]
        plan = MultiECOrderPreservingScheduler(StubEstimator()).plan(jobs, state)
        assert plan.decisions[0].placement == Placement.IC


class TestMultiSiteEnvironment:
    def _run(self, scheduler_cls):
        cfg = SystemConfig(
            ic_machines=4, ec_machines=1, seed=5,
            extra_ec_sites=(
                ECSiteSpec(name="b", machines=1, up_base_mbps=3.0, down_base_mbps=4.0),
            ),
        )
        gen = WorkloadGenerator(bucket=Bucket.LARGE, seed=9)
        batches = gen.generate(
            WorkloadConfig(bucket=Bucket.LARGE, n_batches=3, mean_jobs_per_batch=8, seed=9)
        )
        env = CloudBurstEnvironment(cfg)
        env.pretrain_qrsm(*gen.sample_training_set(200))
        trace = env.run(batches, scheduler_cls(env.estimator))
        return env, trace

    def test_jobs_complete_across_sites(self):
        env, trace = self._run(MultiECGreedyScheduler)
        assert all(r.completed for r in trace.records)
        trace.validate()
        # The trace accounts for all EC machines across sites.
        assert trace.ec_machines == 2

    def test_extra_site_actually_used(self):
        env, trace = self._run(MultiECGreedyScheduler)
        used_sites = {
            st.site for st in env._states.values()
            if st.record.placement == Placement.EC
        }
        assert 1 in used_sites

    def test_busy_time_sums_sites(self):
        env, trace = self._run(MultiECOrderPreservingScheduler)
        expected = env.ec.total_busy_time + sum(
            s.cluster.total_busy_time for s in env.extra_site_runtimes
        )
        assert trace.ec_busy_time == pytest.approx(expected)

    def test_two_sites_beat_one_under_load(self):
        """Doubling EC capacity via a second provider cuts makespan."""
        gen = WorkloadGenerator(bucket=Bucket.LARGE, seed=9)
        batches = gen.generate(
            WorkloadConfig(bucket=Bucket.LARGE, n_batches=4, mean_jobs_per_batch=12, seed=9)
        )

        def run(extra):
            cfg = SystemConfig(ic_machines=4, ec_machines=2, seed=5,
                               extra_ec_sites=extra)
            env = CloudBurstEnvironment(cfg)
            env.pretrain_qrsm(*gen.sample_training_set(200))
            return env.run(batches, MultiECGreedyScheduler(env.estimator))

        single = run(())
        double = run((ECSiteSpec(name="b", machines=2),))
        assert double.makespan < single.makespan

    def test_invalid_site_spec(self):
        with pytest.raises(ValueError):
            ECSiteSpec(name="x", machines=0)
        with pytest.raises(ValueError):
            ECSiteSpec(name="x", up_base_mbps=0.0)
