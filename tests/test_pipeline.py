"""Transfer pipeline tests: FIFO, size-interval routing, cross-queue policy."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.models.bandwidth import DiurnalBandwidthProfile, TimeOfDayBandwidthEstimator
from repro.models.threads import ThreadTuner
from repro.sim.engine import Simulator
from repro.sim.network import CapacityProcess, FluidLink
from repro.sim.pipeline import SizeQueue, TransferPipeline


def make_pipeline(mbps: float = 4.0, per_thread: float = 2.0, initial_threads: int = 2):
    sim = Simulator()
    profile = DiurnalBandwidthProfile(
        base_mbps=mbps, daily_amplitude=0.0, half_daily_amplitude=0.0
    )
    cap = CapacityProcess(sim, profile, np.random.default_rng(0), variation=0.0)
    link = FluidLink(sim, cap, per_thread_mbps=per_thread)
    tuner = ThreadTuner(initial_threads=initial_threads, max_threads=8)
    est = TimeOfDayBandwidthEstimator(prior_mbps=mbps)
    return sim, TransferPipeline(sim, link, tuner, est, name="upload")


class TestSizeQueue:
    def test_accepts_half_open_interval(self):
        q = SizeQueue("q", 10.0, 100.0)
        assert not q.accepts(10.0)
        assert q.accepts(10.1)
        assert q.accepts(100.0)
        assert not q.accepts(100.1)

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            SizeQueue("q", 5.0, 5.0)


class TestSingleQueue:
    def test_sequential_fifo_transfers(self):
        sim, pipe = make_pipeline(mbps=4.0, per_thread=2.0, initial_threads=2)
        done = []
        pipe.enqueue("a", 8.0, on_complete=lambda p: done.append((p, sim.now)))
        pipe.enqueue("b", 4.0, on_complete=lambda p: done.append((p, sim.now)))
        sim.run(until=100.0)
        # One at a time at 4 MB/s: a at t=2, b at t=3.
        assert done == [("a", pytest.approx(2.0)), ("b", pytest.approx(3.0))]

    def test_on_start_fires_at_transfer_start(self):
        sim, pipe = make_pipeline()
        starts = []
        pipe.enqueue("a", 8.0, on_start=lambda p: starts.append((p, sim.now)))
        pipe.enqueue("b", 4.0, on_start=lambda p: starts.append((p, sim.now)))
        sim.run(until=100.0)
        assert starts == [("a", 0.0), ("b", pytest.approx(2.0))]

    def test_backlog_accounting(self):
        sim, pipe = make_pipeline()
        pipe.enqueue("a", 8.0)
        pipe.enqueue("b", 4.0)
        assert pipe.pending_mb == pytest.approx(4.0)   # b waits
        assert pipe.backlog_mb == pytest.approx(12.0)  # a in flight + b
        sim.run(until=100.0)
        assert pipe.backlog_mb == pytest.approx(0.0)
        assert pipe.idle

    def test_cancel_pending(self):
        sim, pipe = make_pipeline()
        done = []
        pipe.enqueue("a", 8.0, on_complete=lambda p: done.append(p))
        pipe.enqueue("b", 4.0, on_complete=lambda p: done.append(p))
        assert pipe.cancel("b") is True
        assert pipe.cancel("b") is False
        assert pipe.cancel("a") is False  # already transferring
        sim.run(until=100.0)
        assert done == ["a"]

    def test_rejects_nonpositive_size(self):
        _, pipe = make_pipeline()
        with pytest.raises(ValueError):
            pipe.enqueue("a", 0.0)


class TestSizeIntervalQueues:
    def test_routing_by_size(self):
        sim, pipe = make_pipeline()
        pipe.set_size_bounds(10.0, 100.0)
        assert [q.name for q in pipe.queues] == [
            "upload-small", "upload-medium", "upload-large",
        ]
        pipe.enqueue("l", 200.0)
        pipe.enqueue("m", 50.0)
        pipe.enqueue("s", 5.0)
        # All three start immediately, one per queue.
        assert all(q.active is not None for q in pipe.queues)
        assert [q.active.payload for q in pipe.queues] == ["s", "m", "l"]

    def test_concurrent_queues_share_link(self):
        sim, pipe = make_pipeline(mbps=3.0, per_thread=10.0, initial_threads=1)
        pipe.set_size_bounds(10.0, 100.0)
        done = {}
        pipe.enqueue("l", 200.0, on_complete=lambda p: done.setdefault(p, sim.now))
        pipe.enqueue("s", 4.0, on_complete=lambda p: done.setdefault(p, sim.now))
        sim.run(until=10.0)
        # Small shares the 3 MB/s pipe (1.5 each): 4MB -> ~2.67s, far
        # earlier than the large transfer; a single FIFO would have made it
        # wait the full 200 MB.
        assert done["s"] == pytest.approx(4.0 / 1.5)

    def test_small_job_not_blocked_by_large(self):
        """The motivating SIBS scenario: small job overtakes a large upload."""
        # Single queue: small waits for the large upload to finish.
        sim1, single = make_pipeline(mbps=4.0, per_thread=10.0)
        t_single = {}
        single.enqueue("L", 200.0, on_complete=lambda p: t_single.setdefault(p, sim1.now))
        single.enqueue("S", 2.0, on_complete=lambda p: t_single.setdefault(p, sim1.now))
        sim1.run(until=500.0)
        # Split queues: small rides its own queue concurrently.
        sim2, split = make_pipeline(mbps=4.0, per_thread=10.0)
        split.set_size_bounds(10.0, 100.0)
        t_split = {}
        split.enqueue("L", 200.0, on_complete=lambda p: t_split.setdefault(p, sim2.now))
        split.enqueue("S", 2.0, on_complete=lambda p: t_split.setdefault(p, sim2.now))
        sim2.run(until=500.0)
        assert t_split["S"] < t_single["S"]

    def test_lower_queue_rides_idle_higher_queue(self):
        sim, pipe = make_pipeline(mbps=4.0, per_thread=10.0)
        pipe.set_size_bounds(10.0, 100.0)
        done = {}
        for k in range(3):  # three small jobs, no medium/large work
            pipe.enqueue(f"s{k}", 4.0, on_complete=lambda p: done.setdefault(p, sim.now))
        # All three queues should be busy: one small in its own queue, two
        # riding the idle medium and large queues.
        assert sum(1 for q in pipe.queues if q.active is not None) == 3
        sim.run(until=100.0)
        assert len(done) == 3

    def test_higher_job_never_rides_lower_queue(self):
        sim, pipe = make_pipeline(mbps=4.0, per_thread=10.0)
        pipe.set_size_bounds(10.0, 100.0)
        pipe.enqueue("l1", 200.0)
        pipe.enqueue("l2", 250.0)
        pipe.enqueue("l3", 300.0)
        # Only the large queue transfers; small/medium stay idle.
        active = [q.name for q in pipe.queues if q.active is not None]
        assert active == ["upload-large"]
        assert pipe.queues[-1].pending_mb == pytest.approx(550.0)

    def test_queue_loads(self):
        sim, pipe = make_pipeline()
        pipe.set_size_bounds(10.0, 100.0)
        pipe.enqueue("s1", 5.0)
        pipe.enqueue("s2", 6.0)   # queued behind s1 in the small queue...
        pipe.enqueue("s3", 7.0)
        pipe.enqueue("s4", 8.0)
        pipe.enqueue("m1", 50.0)
        loads = pipe.queue_loads_mb()
        # s1 rides small, s2 rides medium... depends on idle slots; at
        # minimum total pending must match.
        assert sum(loads) == pytest.approx(pipe.pending_mb)

    def test_invalid_bounds(self):
        _, pipe = make_pipeline()
        with pytest.raises(ValueError):
            pipe.set_size_bounds(100.0, 50.0)
        with pytest.raises(ValueError):
            pipe.set_size_bounds(0.0, 50.0)

    def test_rebuild_with_in_flight_transfers_never_wedges(self):
        """Regression: rebuilding bounds while transfers fly must not deadlock.

        Two in-flight transfers can route to the same new interval; the
        pipeline must keep draining everything afterwards.
        """
        sim, pipe = make_pipeline(mbps=4.0, per_thread=10.0)
        pipe.set_size_bounds(10.0, 100.0)
        done = []
        pipe.enqueue("a", 40.0, on_complete=done.append)   # medium
        pipe.enqueue("b", 50.0, on_complete=done.append)   # medium -> rides large
        pipe.enqueue("c", 60.0, on_complete=done.append)
        pipe.enqueue("d", 45.0, on_complete=done.append)
        sim.run(until=5.0)
        # Both in-flight transfers now fall into the new 'large' interval.
        pipe.set_size_bounds(5.0, 8.0)
        pipe.enqueue("e", 30.0, on_complete=done.append)
        sim.run(until=500.0)
        assert sorted(done) == ["a", "b", "c", "d", "e"]
        assert pipe.idle

    def test_back_to_single_queue(self):
        sim, pipe = make_pipeline()
        pipe.set_size_bounds(10.0, 100.0)
        pipe.enqueue("a", 5.0)
        pipe.enqueue("b", 50.0)
        pipe.set_single_queue()
        assert len(pipe.queues) == 1
        assert pipe.queues[0].upper == math.inf
        done = []
        pipe.enqueue("c", 5.0, on_complete=done.append)
        sim.run(until=500.0)
        assert pipe.items_completed == 3


class TestModelFeedback:
    def test_transfers_update_estimator_and_tuner(self):
        sim, pipe = make_pipeline(mbps=4.0, per_thread=2.0, initial_threads=2)
        pipe.enqueue("a", 8.0)
        pipe.enqueue("b", 8.0)
        sim.run(until=100.0)
        assert pipe.estimator.n_observations == 2
        assert len(pipe.tuner.history) == 2
        # Idle link, cap 2*2=4 = capacity: measured speed = 4 MB/s.
        assert pipe.estimator.estimate(0.0) == pytest.approx(4.0)
