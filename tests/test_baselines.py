"""Baseline scheduler unit tests."""

from __future__ import annotations

import pytest

from repro.common import Placement
from repro.core.baselines import RandomBurstScheduler, ThresholdScheduler

from tests.conftest import make_job, make_state
from tests.test_schedulers import StubEstimator


class TestRandomBurst:
    def test_probability_zero_never_bursts(self):
        sched = RandomBurstScheduler(StubEstimator(), burst_probability=0.0)
        jobs = [make_job(job_id=i) for i in range(1, 20)]
        plan = sched.plan(jobs, make_state())
        assert plan.n_bursted == 0

    def test_probability_one_always_bursts(self):
        sched = RandomBurstScheduler(StubEstimator(), burst_probability=1.0)
        jobs = [make_job(job_id=i) for i in range(1, 20)]
        plan = sched.plan(jobs, make_state())
        assert plan.n_bursted == len(jobs)

    def test_burst_fraction_approximates_probability(self):
        sched = RandomBurstScheduler(StubEstimator(), burst_probability=0.3, seed=1)
        jobs = [make_job(job_id=i) for i in range(1, 401)]
        plan = sched.plan(jobs, make_state())
        assert 0.2 < plan.n_bursted / len(jobs) < 0.4

    def test_deterministic_given_seed(self):
        jobs = [make_job(job_id=i) for i in range(1, 30)]
        p1 = RandomBurstScheduler(StubEstimator(), 0.5, seed=9).plan(jobs, make_state())
        p2 = RandomBurstScheduler(StubEstimator(), 0.5, seed=9).plan(jobs, make_state())
        assert [d.placement for d in p1.decisions] == [
            d.placement for d in p2.decisions
        ]

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            RandomBurstScheduler(StubEstimator(), burst_probability=1.5)


class TestThreshold:
    def test_no_burst_when_backlog_shallow(self):
        sched = ThresholdScheduler(StubEstimator(), backlog_threshold_s=100.0)
        jobs = [make_job(job_id=1, proc_time=10.0)]
        plan = sched.plan(jobs, make_state(ic_free=[0.0] * 4))
        assert plan.decisions[0].placement == Placement.IC

    def test_bursts_when_backlog_deep(self):
        sched = ThresholdScheduler(StubEstimator(), backlog_threshold_s=100.0)
        jobs = [make_job(job_id=1, proc_time=10.0)]
        state = make_state(ic_free=[500.0] * 4)
        plan = sched.plan(jobs, state)
        assert plan.decisions[0].placement == Placement.EC

    def test_own_commits_raise_backlog(self):
        """Enough IC placements eventually push the batch over threshold."""
        sched = ThresholdScheduler(StubEstimator(), backlog_threshold_s=50.0)
        jobs = [make_job(job_id=i, proc_time=60.0) for i in range(1, 10)]
        plan = sched.plan(jobs, make_state(ic_free=[0.0, 0.0]))
        placements = [d.placement for d in plan.decisions]
        assert placements[0] == Placement.IC
        assert Placement.EC in placements

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            ThresholdScheduler(StubEstimator(), backlog_threshold_s=-1.0)
