"""Convergence-plane tests: the loop that makes observed match desired."""

from __future__ import annotations

import pytest

from repro.policy import (
    Converger,
    ConvergerConfig,
    PolicySet,
    ScalingPolicy,
)
from repro.sim.cluster import Cluster
from repro.sim.engine import Simulator


def make_loop(policies, config=None, n_machines=2, **kwargs):
    sim = Simulator()
    cluster = Cluster(sim, "ec", n_machines)
    conv = Converger(sim, cluster, PolicySet(policies), config, **kwargs)
    conv.start()
    return sim, cluster, conv


class TestConvergence:
    def test_target_policy_launches_up_to_desired(self):
        sim, cluster, conv = make_loop(
            [ScalingPolicy(name="grow", action="target", amount=5)],
            ConvergerConfig(interval_s=10.0),
        )
        sim.run(until=11.0)
        assert cluster.n_machines == 5
        assert conv.step_totals()["launch"] == 3
        assert conv.converged

    def test_target_policy_drains_down_to_desired(self):
        sim, cluster, conv = make_loop(
            [ScalingPolicy(name="shrink", action="target", amount=2)],
            ConvergerConfig(interval_s=10.0),
            n_machines=6,
        )
        sim.run(until=11.0)
        assert cluster.n_machines == 2
        assert conv.step_totals()["drain"] == 4

    def test_launch_delay_counts_pending_and_never_double_launches(self):
        sim, cluster, conv = make_loop(
            [ScalingPolicy(name="grow", action="target", amount=4)],
            ConvergerConfig(interval_s=10.0, launch_delay_s=25.0),
        )
        # Tick 1 (t=10) launches two pending machines that join at t=35;
        # ticks at t=20 and t=30 see effective = online + pending = 4
        # and must not double-launch.
        sim.run(until=36.0)
        assert conv.step_totals()["launch"] == 2
        assert cluster.n_machines == 4
        launches_per_tick = [
            sum(1 for s in d.steps if s.kind == "launch")
            for d in conv.decisions
        ]
        assert launches_per_tick == [2, 0, 0]

    def test_empty_policy_set_observes_and_audits_but_never_acts(self):
        sim, cluster, conv = make_loop([], ConvergerConfig(interval_s=10.0))
        sim.run(until=45.0)
        assert conv.ticks == 4
        assert cluster.n_machines == 2
        assert all(d.winner is None and not d.steps for d in conv.decisions)
        assert len(conv.audit_sha256()) == 64

    def test_idempotent_start(self):
        sim, cluster, conv = make_loop(
            [ScalingPolicy(name="hold", action="target", amount=2)],
            ConvergerConfig(interval_s=10.0),
        )
        conv.start()
        conv.start()
        sim.run(until=11.0)
        assert conv.ticks == 1  # one loop, not three


class TestDamping:
    def test_cooldown_suppresses_flapping(self):
        # A step-up policy that always triggers would add 1 machine per
        # tick; a 35s cooldown across 10s ticks limits it to one fire
        # per 4 ticks.
        sim, cluster, conv = make_loop(
            [
                ScalingPolicy(
                    name="flap", action="step_up", amount=1,
                    trigger="always", cooldown_s=35.0, max_capacity=64,
                )
            ],
            ConvergerConfig(interval_s=10.0),
        )
        sim.run(until=81.0)  # ticks at 10..80
        assert conv.ticks == 8
        assert conv.step_totals()["launch"] == 2  # fired at t=10 and t=50
        assert cluster.n_machines == 4

    def test_sustain_periods_requires_consecutive_ticks(self):
        sim, cluster, conv = make_loop(
            [
                ScalingPolicy(
                    name="lazy-shrink", action="step_down", amount=1,
                    trigger="idle", idle_at_least=1, sustain_periods=3,
                    min_capacity=1,
                )
            ],
            ConvergerConfig(interval_s=10.0),
            n_machines=3,
        )
        sim.run(until=31.0)
        # Idle held for ticks 1-2 but only tick 3 passes the sustain bar.
        per_tick = [
            sum(1 for s in d.steps if s.kind == "drain")
            for d in conv.decisions
        ]
        assert per_tick == [0, 0, 1]
        assert cluster.n_machines == 2


class TestTriggersInLoop:
    def test_webhook_armed_then_consumed(self):
        sim, cluster, conv = make_loop(
            [
                ScalingPolicy(
                    name="burst", action="step_up", amount=2,
                    trigger="webhook", webhook="deploy", max_capacity=16,
                )
            ],
            ConvergerConfig(interval_s=10.0),
        )
        sim.schedule(15.0, lambda: conv.fire_webhook("deploy"))
        sim.run(until=41.0)
        per_tick = [
            sum(1 for s in d.steps if s.kind == "launch")
            for d in conv.decisions
        ]
        # Armed between ticks 1 and 2: consumed exactly once, by tick 2.
        assert per_tick == [0, 2, 0, 0]

    def test_scheduled_policy_fires_once_per_period(self):
        sim, cluster, conv = make_loop(
            [
                ScalingPolicy(
                    name="cron", action="step_up", amount=1,
                    trigger="scheduled", period_s=50.0, max_capacity=64,
                )
            ],
            ConvergerConfig(interval_s=10.0),
        )
        sim.run(until=101.0)
        # Boundaries at t=0 (seen by the first tick), 50, 100.
        assert conv.step_totals()["launch"] == 3


def _noop(item, machine):
    pass


class TestRetryAndBackoff:
    def test_failed_drains_retry_then_back_off(self):
        # Under the gross basis a draining machine still counts, so a
        # shrink target keeps emitting drains — but retire_machine
        # refuses to touch the one non-draining machine left. After
        # max_step_retries consecutive all-failed ticks the converger
        # stops hammering the pool until the gap changes shape.
        sim, cluster, conv = make_loop(
            [
                ScalingPolicy(
                    name="shrink", action="target", amount=1, min_capacity=1
                )
            ],
            ConvergerConfig(
                interval_s=10.0, basis="gross", max_step_retries=2
            ),
            n_machines=2,
        )
        cluster.submit(object(), 10_000.0, _noop)
        cluster.submit(object(), 10_000.0, _noop)
        sim.run(until=81.0)
        notes = [d.note for d in conv.decisions]
        assert "retries-exhausted" in notes
        assert "backoff" in notes
        backoff_ticks = [d for d in conv.decisions if d.note == "backoff"]
        assert backoff_ticks and all(not d.steps for d in backoff_ticks)
        assert conv.step_totals()["failed"] >= 3

    def test_gap_change_resets_the_retry_budget(self):
        sim, cluster, conv = make_loop(
            [
                ScalingPolicy(
                    name="shrink", action="target", amount=1, min_capacity=1
                )
            ],
            ConvergerConfig(
                interval_s=10.0, basis="gross", max_step_retries=1
            ),
            n_machines=2,
        )
        cluster.submit(object(), 45.0, _noop)
        cluster.submit(object(), 45.0, _noop)
        sim.run(until=41.0)
        assert conv.decisions[-1].note == "backoff"
        # At t=45 the jobs finish and the draining machine leaves; the
        # gap closes and the converger comes out of backoff clean.
        sim.run(until=61.0)
        assert cluster.n_machines == 1
        assert conv.converged
        assert conv.decisions[-1].note != "backoff"


class TestStepBounds:
    def test_max_launch_per_tick_rations_growth(self):
        sim, cluster, conv = make_loop(
            [ScalingPolicy(name="grow", action="target", amount=8)],
            ConvergerConfig(interval_s=10.0, max_launch_per_tick=2),
        )
        sim.run(until=31.0)
        per_tick = [
            sum(1 for s in d.steps if s.kind == "launch")
            for d in conv.decisions
        ]
        assert per_tick == [2, 2, 2]
        assert cluster.n_machines == 8

    def test_max_drain_per_tick_rations_shrink(self):
        sim, cluster, conv = make_loop(
            [ScalingPolicy(name="shrink", action="target", amount=2)],
            ConvergerConfig(interval_s=10.0, max_drain_per_tick=1),
            n_machines=5,
        )
        sim.run(until=31.0)
        assert cluster.n_machines == 2


class TestOfflineReclaim:
    def test_offline_husks_deleted_under_effective_basis(self):
        sim, cluster, conv = make_loop(
            [ScalingPolicy(name="hold", action="target", amount=3)],
            ConvergerConfig(interval_s=10.0),
            n_machines=3,
        )
        # Provider takes one machine away: effective drops to 2, the
        # next tick launches a replacement and deletes the idle husk.
        sim.schedule(15.0, lambda: cluster.take_offline(cluster.machines[0]))
        sim.run(until=21.0)
        totals = conv.step_totals()
        assert totals["launch"] == 1
        assert totals["delete"] == 1
        assert cluster.n_machines == 3
        assert cluster.offline_machines == 0
        assert conv.converged

    def test_gross_basis_never_deletes(self):
        sim, cluster, conv = make_loop(
            [ScalingPolicy(name="hold", action="target", amount=3)],
            ConvergerConfig(interval_s=10.0, basis="gross"),
            n_machines=3,
        )
        sim.schedule(15.0, lambda: cluster.take_offline(cluster.machines[0]))
        sim.run(until=41.0)
        # Gross capacity still counts the offline machine: no gap.
        assert conv.step_totals() == {
            "launch": 0, "drain": 0, "delete": 0, "failed": 0,
        }
        assert cluster.offline_machines == 1

    def test_remove_offline_machine_spares_busy_and_last(self):
        sim = Simulator()
        cluster = Cluster(sim, "ec", 2)
        cluster.machines[0].process(object(), 1000.0, _noop)
        cluster.take_offline(cluster.machines[0])
        assert not cluster.remove_offline_machine()  # busy husk: spared
        cluster.take_offline(cluster.machines[1])
        assert cluster.remove_offline_machine()  # the idle one goes
        assert cluster.n_machines == 1
        assert not cluster.remove_offline_machine()  # never below one


class TestAuditLog:
    def test_audit_hash_is_stable_and_order_sensitive(self):
        def run():
            sim, cluster, conv = make_loop(
                [ScalingPolicy(name="grow", action="target", amount=4)],
                ConvergerConfig(interval_s=10.0),
            )
            sim.run(until=31.0)
            return conv

        a, b = run(), run()
        assert a.audit_sha256() == b.audit_sha256()
        assert [d.canonical() for d in a.decisions] == [
            d.canonical() for d in b.decisions
        ]
        # A different policy produces a different log.
        sim, cluster, other = make_loop(
            [ScalingPolicy(name="grow", action="target", amount=5)],
            ConvergerConfig(interval_s=10.0),
        )
        sim.run(until=31.0)
        assert other.audit_sha256() != a.audit_sha256()

    def test_summary_shape(self):
        sim, cluster, conv = make_loop(
            [ScalingPolicy(name="grow", action="target", amount=3)],
            ConvergerConfig(interval_s=10.0),
        )
        sim.run(until=11.0)
        summary = conv.summary()
        assert summary["ticks"] == 1
        assert summary["policies"] == ["grow"]
        assert summary["desired"] == 3
        assert summary["observed"] == 3
        assert summary["converged"] is True
        assert summary["last_winner"] == "grow"
        assert len(summary["audit_sha256"]) == 64

    def test_convergence_lag_reported_once_per_divergence(self):
        sim, cluster, conv = make_loop(
            [ScalingPolicy(name="hold", action="target", amount=3)],
            ConvergerConfig(interval_s=10.0),
            n_machines=3,
        )
        sim.run(until=11.0)
        # Already at desired: tick 1 reports lag 0 and goes quiet.
        assert conv.decisions[0].lag_s == 0.0
        sim.run(until=21.0)
        assert conv.decisions[1].lag_s is None
        # Preemption re-diverges the held desired: the lag clock re-arms
        # and the repairing tick reports its own convergence lag.
        cluster.take_offline(cluster.machines[0])
        sim.run(until=31.0)
        assert conv.decisions[2].lag_s == 0.0
        assert conv.decisions[2].note == "converged"


class TestResolutionInLoop:
    def test_highest_severity_wins_the_tick(self):
        sim, cluster, conv = make_loop(
            [
                ScalingPolicy(
                    name="modest", action="target", amount=3, severity=1
                ),
                ScalingPolicy(
                    name="urgent", action="target", amount=6, severity=9
                ),
            ],
            ConvergerConfig(interval_s=10.0),
        )
        sim.run(until=11.0)
        d = conv.decisions[0]
        assert d.winner == "urgent"
        assert d.candidates == ("urgent", "modest")
        assert cluster.n_machines == 6

    def test_winner_cooldown_lets_runner_up_take_over(self):
        sim, cluster, conv = make_loop(
            [
                ScalingPolicy(
                    name="floor", action="target", amount=3, severity=1
                ),
                ScalingPolicy(
                    name="spike", action="step_up", amount=4, severity=9,
                    cooldown_s=100.0, max_capacity=16,
                ),
            ],
            ConvergerConfig(interval_s=10.0),
        )
        sim.run(until=21.0)
        # Tick 1: spike wins (2 -> 6). Tick 2: spike is cooling down,
        # the floor policy drains back toward 3.
        assert conv.decisions[0].winner == "spike"
        assert conv.decisions[1].winner == "floor"
        assert cluster.n_machines == 3


class TestChurnDeterminism:
    def test_double_run_under_spot_and_outage_churn(self):
        """The tentpole determinism claim: spot preemptions tearing
        capacity down *while* the converger replaces it, plus two
        abutting link outages, and the whole thing double-runs to the
        same trace hash and the same audit sha."""
        from repro.analysis.determinism import hash_trace
        from repro.econ import EconConfig, SpotMarketConfig, attach_econ
        from repro.experiments.config import ExperimentSpec
        from repro.experiments.runner import run_one
        from repro.policy import PolicyConfig, attach_policy
        from repro.sim.environment import SystemConfig
        from repro.sim.faults import OutageInjector, OutageWindow

        spec = ExperimentSpec(
            n_batches=2, mean_jobs_per_batch=8,
            system=SystemConfig(ic_machines=4, ec_machines=3, seed=81),
        )
        config = PolicyConfig(
            policies=(
                ScalingPolicy(
                    name="hold", action="target", amount=4, max_capacity=16
                ),
            ),
            converger=ConvergerConfig(interval_s=120.0, launch_delay_s=20.0),
        )

        def run_once():
            captured = {}

            def hook(env):
                captured["econ"] = attach_econ(
                    env,
                    EconConfig(
                        spot=SpotMarketConfig(
                            bid_usd_per_hour=0.11, variation=0.4
                        )
                    ),
                )
                captured["policy"] = attach_policy(env, config)
                captured["outages"] = OutageInjector(
                    env.sim, [env.up_capacity, env.down_capacity],
                    [
                        OutageWindow(start_s=60.0, duration_s=120.0),
                        OutageWindow(start_s=180.0, duration_s=120.0),
                    ],
                )

            trace = run_one("Op", spec, env_hook=hook)
            return trace, captured

        trace_a, cap_a = run_once()
        trace_b, cap_b = run_once()
        assert cap_a["econ"].ledger.preemptions > 0
        assert cap_a["policy"].converger.ticks > 0
        assert hash_trace(trace_a) == hash_trace(trace_b)
        audit_a = trace_a.metadata["policy"]["audit_sha256"]
        audit_b = trace_b.metadata["policy"]["audit_sha256"]
        assert audit_a == audit_b
        assert audit_a == cap_a["policy"].converger.audit_sha256()

    def test_idle_policy_run_is_bit_identical_to_no_policy_run(self):
        """Attached-but-idle parity: a policy that never fires must not
        move the trace hash at all (launches would perturb dispatch)."""
        from repro.analysis.determinism import hash_trace
        from repro.experiments.config import ExperimentSpec
        from repro.experiments.runner import run_one
        from repro.policy import PolicyConfig, attach_policy
        from repro.sim.environment import SystemConfig

        spec = ExperimentSpec(
            n_batches=2, mean_jobs_per_batch=8,
            system=SystemConfig(ic_machines=4, ec_machines=3, seed=81),
        )
        plain = run_one("Op", spec)
        idle_config = PolicyConfig(
            policies=(
                ScalingPolicy(
                    name="never", action="step_up", trigger="queue",
                    queue_at_least=10**9,
                ),
            ),
            converger=ConvergerConfig(interval_s=60.0),
        )
        captured = {}

        def hook(env):
            captured["policy"] = attach_policy(env, idle_config)

        attached = run_one("Op", spec, env_hook=hook)
        assert captured["policy"].converger.ticks > 0
        assert hash_trace(plain) == hash_trace(attached)
        assert "policy" not in plain.metadata
        assert attached.metadata["policy"]["summary"]["steps"] == {
            "launch": 0, "drain": 0, "delete": 0, "failed": 0,
        }
