"""Rescheduling strategy selection logic (Section IV.D, future work)."""

from __future__ import annotations

import pytest

from repro.core.rescheduling import pick_ec_push, pick_ic_pull

from tests.conftest import make_job, make_state
from tests.test_schedulers import StubEstimator


class TestIcPull:
    def test_steals_job_that_local_rerun_beats(self):
        jobs = [make_job(job_id=1, proc_time=30.0), make_job(job_id=2, proc_time=40.0)]
        est_completions = {(1, 0): 500.0, (2, 0): 35.0}
        est_procs = {(1, 0): 30.0, (2, 0): 40.0}
        c = pick_ic_pull(jobs, est_completions, est_procs, now=0.0, ic_speed=1.0)
        # Job 1: remaining 500 > local 30 -> steal; new estimate now+30.
        assert c is not None and c.job.job_id == 1
        assert c.est_completion == pytest.approx(30.0)

    def test_scans_in_queue_order(self):
        jobs = [make_job(job_id=1, proc_time=30.0), make_job(job_id=2, proc_time=30.0)]
        est_completions = {(1, 0): 100.0, (2, 0): 1000.0}
        est_procs = {(1, 0): 30.0, (2, 0): 30.0}
        c = pick_ic_pull(jobs, est_completions, est_procs, now=0.0, ic_speed=1.0)
        assert c.job.job_id == 1  # head of the EC queue wins

    def test_no_candidate_when_ec_is_faster(self):
        jobs = [make_job(job_id=1, proc_time=100.0)]
        c = pick_ic_pull(jobs, {(1, 0): 50.0}, {(1, 0): 100.0}, now=0.0, ic_speed=1.0)
        assert c is None

    def test_speed_scales_local_rerun(self):
        jobs = [make_job(job_id=1, proc_time=100.0)]
        # remaining 60 < 100 at speed 1 -> None; at speed 2 local takes 50 -> steal.
        assert pick_ic_pull(jobs, {(1, 0): 60.0}, {(1, 0): 100.0}, 0.0, 1.0) is None
        c = pick_ic_pull(jobs, {(1, 0): 60.0}, {(1, 0): 100.0}, 0.0, 2.0)
        assert c is not None

    def test_empty_queue(self):
        assert pick_ic_pull([], {}, {}, now=0.0, ic_speed=1.0) is None

    def test_unknown_job_skipped(self):
        jobs = [make_job(job_id=9, proc_time=10.0)]
        assert pick_ic_pull(jobs, {}, {}, now=0.0, ic_speed=1.0) is None


class TestEcPush:
    def test_tail_job_with_slack_is_pushed(self):
        est = StubEstimator()
        # Plenty of pending work -> huge slack; fast links.
        state = make_state(
            ic_free=[500.0] * 2, ec_free=[0.0, 0.0],
            est_up_mbps=10.0, est_down_mbps=10.0, up_threads=20, down_threads=20,
            pending_completions=[500.0, 500.0],
        )
        waiting = [make_job(job_id=i, size_mb=10.0, proc_time=30.0, output_mb=5.0)
                   for i in (5, 6, 7)]
        c = pick_ec_push(waiting, est, state)
        assert c is not None
        assert c.job.job_id == 7  # scanned from the last

    def test_no_push_without_slack(self):
        est = StubEstimator()
        state = make_state(ic_free=[0.0] * 2, ec_free=[0.0, 0.0],
                           pending_completions=[])
        waiting = [make_job(job_id=1, size_mb=100.0, proc_time=30.0)]
        assert pick_ec_push(waiting, est, state) is None

    def test_own_estimate_excluded_from_slack_pool(self):
        est = StubEstimator()
        # The only pending completion belongs to the candidate itself; its
        # keyed entry must not seed its own slack.
        state = make_state(ic_free=[0.0], ec_free=[0.0, 0.0])
        state.pending_keyed = [((3, 0), 900.0)]
        state.pending_completions = [900.0]
        waiting = [make_job(job_id=3, size_mb=10.0, proc_time=30.0, output_mb=5.0)]
        assert pick_ec_push(waiting, est, state) is None

    def test_empty_queue(self):
        assert pick_ec_push([], StubEstimator(), make_state()) is None
