"""Elastic EC autoscaler and elastic-cluster mechanics tests."""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentSpec
from repro.experiments.runner import build_workload, run_one
from repro.metrics.sla import summarize
from repro.sim.autoscale import ECAutoScaler
from repro.sim.cluster import Cluster
from repro.sim.engine import Simulator
from repro.sim.environment import SystemConfig
from repro.workload.distributions import Bucket


class TestElasticCluster:
    def test_add_machine_dispatches_queued_work(self):
        sim = Simulator()
        c = Cluster(sim, "c", n_machines=1)
        done = []
        c.submit("a", 10.0, lambda i, m: done.append((i, sim.now)))
        c.submit("b", 10.0, lambda i, m: done.append((i, sim.now)))
        c.add_machine()
        sim.run()
        # With the second machine 'b' starts immediately: both done at t=10.
        assert [t for _, t in done] == pytest.approx([10.0, 10.0])

    def test_added_machine_gets_fresh_name(self):
        sim = Simulator()
        c = Cluster(sim, "c", n_machines=2)
        m = c.add_machine()
        assert m.name == "c-2"
        assert c.n_machines == 3

    def test_retire_idle_machine_is_immediate(self):
        sim = Simulator()
        c = Cluster(sim, "c", n_machines=3)
        assert c.retire_machine() is True
        assert c.n_machines == 2

    def test_retire_busy_machine_drains(self):
        sim = Simulator()
        c = Cluster(sim, "c", n_machines=2)
        c.submit("a", 10.0, lambda i, m: None)
        c.submit("b", 10.0, lambda i, m: None)
        assert c.retire_machine() is True
        assert c.n_machines == 2  # still finishing its job
        sim.run()
        assert c.n_machines == 1

    def test_draining_machine_takes_no_new_work(self):
        sim = Simulator()
        c = Cluster(sim, "c", n_machines=2)
        c.submit("a", 10.0, lambda i, m: None)
        c.submit("b", 10.0, lambda i, m: None)
        c.retire_machine()
        starts = []
        c.submit("late", 1.0, lambda i, m: None,
                 on_start=lambda i, m: starts.append(m.name))
        sim.run()
        # 'late' must have run on the surviving machine only.
        assert len(starts) == 1
        assert c.n_machines == 1

    def test_never_below_one_machine(self):
        sim = Simulator()
        c = Cluster(sim, "c", n_machines=1)
        assert c.retire_machine() is False

    def test_busy_time_survives_retirement(self):
        sim = Simulator()
        c = Cluster(sim, "c", n_machines=2)
        c.submit("a", 10.0, lambda i, m: None)
        c.retire_machine()  # retires the idle one
        sim.run()
        assert c.total_busy_time == pytest.approx(10.0)

    def test_rented_machine_seconds_integrates_pool(self):
        sim = Simulator()
        c = Cluster(sim, "c", n_machines=2)
        sim.schedule(10.0, c.add_machine)
        sim.schedule(20.0, lambda: None)
        sim.run()
        # 2 machines for 10s, then 3 for 10s = 50 machine-seconds.
        assert c.rented_machine_seconds == pytest.approx(50.0)


class TestAutoScaler:
    def test_validation(self):
        sim = Simulator()
        c = Cluster(sim, "c", 2)
        with pytest.raises(ValueError):
            ECAutoScaler(sim, c, min_instances=0)
        with pytest.raises(ValueError):
            ECAutoScaler(sim, c, min_instances=3, max_instances=2)
        with pytest.raises(ValueError):
            ECAutoScaler(sim, c, interval_s=0.0)

    def test_scales_up_under_queue_pressure(self):
        sim = Simulator()
        c = Cluster(sim, "c", 1)
        scaler = ECAutoScaler(sim, c, max_instances=4, interval_s=10.0)
        for k in range(6):
            c.submit(k, 500.0, lambda i, m: None)
        sim.run(until=100.0)
        assert c.n_machines > 1
        assert any(e.action == "up" for e in scaler.events)

    def test_scales_down_when_idle(self):
        sim = Simulator()
        c = Cluster(sim, "c", 4)
        scaler = ECAutoScaler(sim, c, min_instances=1, interval_s=10.0,
                              idle_periods_before_down=2)
        sim.run(until=200.0)
        assert c.n_machines == 1
        assert scaler.summary()["scale_downs"] == 3

    def test_knee_caps_pool(self):
        sim = Simulator()
        c = Cluster(sim, "c", 1)
        scaler = ECAutoScaler(sim, c, max_instances=16, knee=2, interval_s=10.0)
        for k in range(20):
            c.submit(k, 1000.0, lambda i, m: None)
        sim.run(until=300.0)
        assert c.n_machines <= 2

    def test_full_run_with_autoscaling_cheaper_at_same_makespan(self):
        """The Section V.B.4 economics: fewer rented machine-seconds."""
        spec = ExperimentSpec(
            bucket=Bucket.LARGE, n_batches=4,
            system=SystemConfig(seed=91, ec_machines=6),
        )
        batches = build_workload(spec)
        static = run_one("Op", spec, batches=batches)

        scalers = []

        def hook(env):
            scalers.append(
                ECAutoScaler(env.sim, env.ec, min_instances=1, max_instances=6,
                             interval_s=60.0)
            )

        elastic = run_one("Op", spec, batches=batches, env_hook=hook)
        assert all(r.completed for r in elastic.records)
        static_cost = 6.0 * (static.end_time - static.arrival_time)
        elastic_cost = scalers[0].summary()["rented_machine_s"]
        assert elastic_cost < static_cost * 0.85
        assert elastic.makespan < static.makespan * 1.10
