"""Machine and cluster (FCFS pool) tests."""

from __future__ import annotations

import pytest

from repro.sim.cluster import Cluster
from repro.sim.engine import Simulator
from repro.sim.resources import Machine


class TestMachine:
    def test_processing_duration_scales_with_speed(self):
        sim = Simulator()
        fast = Machine(sim, "fast", speed=2.0)
        done = []
        fast.process("job", 10.0, lambda item, m: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(5.0)]

    def test_busy_flag_and_current_item(self):
        sim = Simulator()
        m = Machine(sim, "m")
        m.process("x", 5.0, lambda i, mm: None)
        assert m.busy and m.current_item == "x"
        sim.run()
        assert not m.busy and m.current_item is None

    def test_cannot_double_book(self):
        sim = Simulator()
        m = Machine(sim, "m")
        m.process("a", 5.0, lambda i, mm: None)
        with pytest.raises(RuntimeError):
            m.process("b", 5.0, lambda i, mm: None)

    def test_busy_time_accumulates(self):
        sim = Simulator()
        m = Machine(sim, "m")
        m.process("a", 5.0, lambda i, mm: None)
        sim.run()
        m.process("b", 3.0, lambda i, mm: None)
        sim.run()
        assert m.busy_time == pytest.approx(8.0)
        assert m.jobs_processed == 2

    def test_estimated_free_at(self):
        sim = Simulator()
        m = Machine(sim, "m")
        assert m.estimated_free_at == 0.0
        m.process("a", 7.0, lambda i, mm: None)
        assert m.estimated_free_at == pytest.approx(7.0)

    def test_invalid_args(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Machine(sim, "m", speed=0.0)
        m = Machine(sim, "m")
        with pytest.raises(ValueError):
            m.process("a", 0.0, lambda i, mm: None)


class TestCluster:
    def test_parallel_dispatch_up_to_pool_size(self):
        sim = Simulator()
        c = Cluster(sim, "c", n_machines=2)
        done = []
        for k in range(4):
            c.submit(k, 10.0, lambda item, m: done.append((item, sim.now)))
        assert c.busy_machines == 2 and c.queue_length == 2
        sim.run()
        # Two waves: 0,1 at t=10; 2,3 at t=20.
        assert [t for _, t in done] == pytest.approx([10.0, 10.0, 20.0, 20.0])
        assert sorted(i for i, _ in done) == [0, 1, 2, 3]

    def test_fcfs_order(self):
        sim = Simulator()
        c = Cluster(sim, "c", n_machines=1)
        started = []
        for k in range(5):
            c.submit(k, 1.0, lambda i, m: None, on_start=lambda i, m: started.append(i))
        sim.run()
        assert started == [0, 1, 2, 3, 4]

    def test_on_start_callback_reports_machine(self):
        sim = Simulator()
        c = Cluster(sim, "c", n_machines=2)
        seen = []
        c.submit("a", 1.0, lambda i, m: None, on_start=lambda i, m: seen.append(m.name))
        assert seen == ["c-0"]

    def test_cancel_queued_item(self):
        sim = Simulator()
        c = Cluster(sim, "c", n_machines=1)
        done = []
        c.submit("a", 5.0, lambda i, m: done.append(i))
        c.submit("b", 5.0, lambda i, m: done.append(i))
        assert c.cancel("b") is True
        assert c.cancel("b") is False  # already gone
        sim.run()
        assert done == ["a"]

    def test_cannot_cancel_running_item(self):
        sim = Simulator()
        c = Cluster(sim, "c", n_machines=1)
        c.submit("a", 5.0, lambda i, m: None)
        assert c.cancel("a") is False  # running, not queued

    def test_on_idle_fires_when_queue_drains(self):
        sim = Simulator()
        c = Cluster(sim, "c", n_machines=1)
        idles = []
        c.on_idle = lambda cluster: idles.append(sim.now)
        c.submit("a", 5.0, lambda i, m: None)
        c.submit("b", 3.0, lambda i, m: None)
        sim.run()
        # on_idle only after the queue is empty: at t=5 'b' is dispatched
        # (queue empties) and at t=8 again.
        assert idles == [pytest.approx(5.0), pytest.approx(8.0)]

    def test_total_busy_time_includes_in_flight(self):
        sim = Simulator()
        c = Cluster(sim, "c", n_machines=1)
        c.submit("a", 10.0, lambda i, m: None)
        sim.run(until=4.0)
        assert c.total_busy_time == pytest.approx(4.0)
        sim.run()
        assert c.total_busy_time == pytest.approx(10.0)

    def test_machine_free_times(self):
        sim = Simulator()
        c = Cluster(sim, "c", n_machines=2)
        c.submit("a", 6.0, lambda i, m: None)
        frees = c.machine_free_times()
        assert frees == [pytest.approx(6.0), 0.0]

    def test_queued_and_running_items(self):
        sim = Simulator()
        c = Cluster(sim, "c", n_machines=1)
        c.submit("a", 5.0, lambda i, m: None)
        c.submit("b", 5.0, lambda i, m: None)
        assert c.running_items() == ["a"]
        assert c.queued_items() == ["b"]

    def test_needs_at_least_one_machine(self):
        with pytest.raises(ValueError):
            Cluster(Simulator(), "c", n_machines=0)

    def test_jobs_completed_counter(self):
        sim = Simulator()
        c = Cluster(sim, "c", n_machines=3)
        for k in range(7):
            c.submit(k, 1.0, lambda i, m: None)
        sim.run()
        assert c.jobs_completed == 7
