"""Scheduler unit tests on crafted, hand-checkable scenarios.

The finish-time estimator is backed by a stub so every number in these
tests can be verified by hand against the algorithms in Section IV.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.common import Placement
from repro.core.bandwidth_splitting import (
    SizeIntervalSplittingScheduler,
    compute_size_bounds,
)
from repro.core.base import SystemState
from repro.core.estimators import FinishTimeEstimator
from repro.core.greedy import GreedyScheduler
from repro.core.ic_only import ICOnlyScheduler
from repro.core.order_preserving import OrderPreservingScheduler
from repro.core.chunking import ChunkPolicy
from repro.models.qrsm import QuadraticResponseSurface
from repro.workload.generator import WorkloadGenerator
from repro.workload.processing import GroundTruthProcessingModel

from tests.conftest import make_job, make_state


class StubEstimator(FinishTimeEstimator):
    """Estimator whose processing-time estimate equals the true time."""

    def __init__(self) -> None:
        pass  # no QRSM needed

    def est_proc_time(self, job):
        return job.true_proc_time


@pytest.fixture
def estimator() -> StubEstimator:
    return StubEstimator()


def real_estimator() -> FinishTimeEstimator:
    gen = WorkloadGenerator(seed=2, truth=GroundTruthProcessingModel(noise_sigma=0.0))
    qrsm = QuadraticResponseSurface().fit(*gen.sample_training_set(300))
    return FinishTimeEstimator(qrsm)


class TestEstimatorArithmetic:
    """ft^ic / ft^ec on states with explicit numbers."""

    def test_ft_ic_idle_machines(self, estimator):
        state = make_state(now=10.0, ic_free=[10.0, 10.0])
        job = make_job(proc_time=60.0)
        assert estimator.ft_ic(job, state) == pytest.approx(70.0)

    def test_ft_ic_waits_for_earliest_machine(self, estimator):
        state = make_state(now=0.0, ic_free=[100.0, 40.0])
        job = make_job(proc_time=60.0)
        assert estimator.ft_ic(job, state) == pytest.approx(100.0)

    def test_ft_ic_speed_scaling(self, estimator):
        state = make_state(now=0.0, ic_free=[0.0], ic_speed=2.0)
        job = make_job(proc_time=60.0)
        assert estimator.ft_ic(job, state) == pytest.approx(30.0)

    def test_ft_ec_breakdown(self, estimator):
        # up_rate = min(4*0.5, 2.0) = 2 MB/s; down same.
        state = make_state(now=0.0, ec_free=[0.0, 0.0],
                           upload_backlog_mb=100.0, download_backlog_mb=0.0)
        job = make_job(size_mb=100.0, proc_time=60.0, output_mb=40.0)
        ec = estimator.ft_ec(job, state)
        assert ec.upload_end == pytest.approx(100.0)   # (100+100)/2
        assert ec.exec_start == pytest.approx(100.0)
        assert ec.exec_end == pytest.approx(160.0)
        assert ec.completion == pytest.approx(180.0)   # +40/2

    def test_ft_ec_waits_for_ec_machine(self, estimator):
        state = make_state(now=0.0, ec_free=[500.0, 500.0])
        job = make_job(size_mb=10.0, proc_time=60.0, output_mb=10.0)
        ec = estimator.ft_ec(job, state)
        assert ec.exec_start == pytest.approx(500.0)

    def test_unloaded_round_trip(self, estimator):
        state = make_state(now=0.0)
        job = make_job(size_mb=100.0, proc_time=60.0, output_mb=40.0)
        # 100/2 + 60 + 40/2 = 130.
        assert estimator.ec_round_trip_unloaded(job, state) == pytest.approx(130.0)

    def test_parallelism_raises_up_rate(self, estimator):
        state = make_state(now=0.0, est_up_mbps=10.0)
        assert state.up_rate == pytest.approx(2.0)
        state.upload_parallelism = 3
        assert state.up_rate == pytest.approx(6.0)


class TestICOnly:
    def test_everything_placed_internally(self, estimator):
        state = make_state(ic_free=[0.0, 0.0])
        jobs = [make_job(job_id=i, proc_time=10.0) for i in range(1, 6)]
        plan = ICOnlyScheduler(estimator).plan(jobs, state)
        assert all(d.placement == Placement.IC for d in plan.decisions)
        assert plan.n_bursted == 0

    def test_completion_estimates_fold_queueing(self, estimator):
        state = make_state(ic_free=[0.0, 0.0])
        jobs = [make_job(job_id=i, proc_time=10.0) for i in range(1, 5)]
        plan = ICOnlyScheduler(estimator).plan(jobs, state)
        # Two machines: finishes at 10,10,20,20.
        assert [d.est_completion for d in plan.decisions] == pytest.approx(
            [10.0, 10.0, 20.0, 20.0]
        )


class TestGreedy:
    def test_prefers_idle_ic(self, estimator):
        """With IC idle and slow links, everything stays local."""
        state = make_state(ic_free=[0.0] * 4, est_up_mbps=0.1, est_down_mbps=0.1)
        jobs = [make_job(job_id=i, size_mb=100, proc_time=30.0) for i in range(1, 4)]
        plan = GreedyScheduler(estimator).plan(jobs, state)
        assert plan.n_bursted == 0

    def test_bursts_when_ic_backlogged(self, estimator):
        """A loaded IC plus a fast pipe pushes work out (Alg. 1 line 4)."""
        state = make_state(
            ic_free=[1000.0], ec_free=[0.0],
            est_up_mbps=10.0, est_down_mbps=10.0, up_threads=20, down_threads=20,
        )
        job = make_job(size_mb=10.0, proc_time=30.0, output_mb=5.0)
        plan = GreedyScheduler(estimator).plan([job], state)
        assert plan.decisions[0].placement == Placement.EC

    def test_tie_goes_to_ic(self, estimator):
        """Alg. 1 line 4: t_ic <= t_ec keeps the job local."""
        # Craft exact tie: ft_ic = 60; ft_ec = 10/2 + 50 + 10/2 = 60.
        state = make_state(ic_free=[0.0], ec_free=[0.0])
        job = make_job(size_mb=10.0, proc_time=60.0, output_mb=10.0)
        # ft_ec = 5 + 60 + 5 = 70 > 60 -> IC, then tweak to tie via proc.
        plan = GreedyScheduler(estimator).plan([job], state)
        assert plan.decisions[0].placement == Placement.IC

    def test_in_batch_commitment(self, estimator):
        """Each decision loads the planning state for the next job."""
        state = make_state(
            ic_free=[0.0], ec_free=[0.0],
            est_up_mbps=10.0, est_down_mbps=10.0, up_threads=20, down_threads=20,
        )
        jobs = [make_job(job_id=i, size_mb=10.0, proc_time=30.0, output_mb=5.0)
                for i in range(1, 7)]
        plan = GreedyScheduler(estimator).plan(jobs, state)
        placements = [d.placement for d in plan.decisions]
        # First job IC (idle), and with a single IC machine the batch must
        # spill to the EC rather than all queue locally.
        assert placements[0] == Placement.IC
        assert Placement.EC in placements
        assert Placement.IC in placements[1:]

    def test_estimates_monotone_in_queue_order_for_same_placement(self, estimator):
        state = make_state(ic_free=[0.0])
        jobs = [make_job(job_id=i, proc_time=10.0) for i in range(1, 4)]
        plan = GreedyScheduler(estimator).plan(jobs, state)
        ic_completions = [d.est_completion for d in plan.decisions
                          if d.placement == Placement.IC]
        assert ic_completions == sorted(ic_completions)


class TestOrderPreserving:
    def scheduler(self, estimator, **kw) -> OrderPreservingScheduler:
        kw.setdefault("enable_chunking", False)
        return OrderPreservingScheduler(estimator, **kw)

    def test_head_job_never_bursted_on_empty_system(self, estimator):
        state = make_state(ic_free=[0.0] * 2)
        jobs = [make_job(job_id=1, proc_time=30.0)]
        plan = self.scheduler(estimator).plan(jobs, state)
        assert plan.decisions[0].placement == Placement.IC

    def test_bursts_only_within_slack(self, estimator):
        """Hand-checked Alg. 2: job 2 fits its cushion, job 3's is gone.

        One IC machine, 1 MB jobs, 2 MB/s links, EC idle:
        job1 -> IC, finishes 100; slack for job2 = 100.
        job2: ft_ec = 0.5 + 20 + 0.5 = 21 <= 100 -> EC.
        job3: slack = max(100, 21) = 100; ft_ec = (1+1)/2 + 20 + (1+1)/2 = 42? still <= 100 -> EC.
        """
        state = make_state(ic_free=[0.0], ec_free=[0.0, 0.0])
        jobs = [
            make_job(job_id=1, size_mb=1.0, proc_time=100.0, output_mb=1.0),
            make_job(job_id=2, size_mb=1.0, proc_time=20.0, output_mb=1.0),
            make_job(job_id=3, size_mb=1.0, proc_time=20.0, output_mb=1.0),
        ]
        plan = self.scheduler(estimator).plan(jobs, state)
        assert [d.placement for d in plan.decisions] == [
            Placement.IC, Placement.EC, Placement.EC,
        ]

    def test_long_round_trip_fails_slack(self, estimator):
        """A bursted job may not outlive the work preceding it."""
        state = make_state(ic_free=[0.0], ec_free=[0.0, 0.0])
        jobs = [
            make_job(job_id=1, size_mb=1.0, proc_time=50.0, output_mb=1.0),
            # Round trip = 100/2 + 30 + 50/2 = 105 > slack 50 -> IC.
            make_job(job_id=2, size_mb=100.0, proc_time=30.0, output_mb=50.0),
        ]
        plan = self.scheduler(estimator).plan(jobs, state)
        assert [d.placement for d in plan.decisions] == [Placement.IC, Placement.IC]

    def test_pending_completions_seed_slack(self, estimator):
        """Backlog from earlier batches opens the cushion (Eq. 1)."""
        state = make_state(
            ic_free=[500.0], ec_free=[0.0, 0.0], pending_completions=[500.0]
        )
        jobs = [make_job(job_id=1, size_mb=10.0, proc_time=30.0, output_mb=5.0)]
        plan = self.scheduler(estimator).plan(jobs, state)
        assert plan.decisions[0].placement == Placement.EC

    def test_slack_margin_relaxes_constraint(self, estimator):
        state = make_state(ic_free=[0.0], ec_free=[0.0, 0.0])
        jobs = [
            make_job(job_id=1, size_mb=1.0, proc_time=20.0, output_mb=1.0),
            # ft_ec = 1 + 20 + 1 = 22 > 20 strict, but <= 20+5 with margin.
            make_job(job_id=2, size_mb=1.0, proc_time=20.0, output_mb=1.0),
        ]
        strict = self.scheduler(estimator).plan(jobs, make_state(ic_free=[0.0], ec_free=[0.0, 0.0]))
        relaxed = self.scheduler(estimator, slack_margin=5.0).plan(jobs, state)
        assert strict.decisions[1].placement == Placement.IC
        assert relaxed.decisions[1].placement == Placement.EC

    def test_chunking_enabled_inserts_subjobs(self):
        est = real_estimator()
        policy = ChunkPolicy(window=3, threshold_mb=40.0, min_chunk_mb=20.0,
                             max_chunk_mb=60.0)
        sched = OrderPreservingScheduler(est, chunk_policy=policy)
        gen = WorkloadGenerator(seed=8)
        jobs = [make_job(job_id=1, size_mb=280.0, proc_time=100.0),
                make_job(job_id=2, size_mb=10.0, proc_time=10.0)]
        state = make_state(ic_free=[0.0] * 4)
        plan = sched.plan(jobs, state)
        assert len(plan.decisions) > 2
        assert all(d.job.key == k for d, k in zip(plan.decisions,
                   sorted(d.job.key for d in plan.decisions)))

    def test_burst_count_monotone_in_backlog(self, estimator):
        """More pending IC work -> weakly more bursting (sanity)."""
        jobs = [make_job(job_id=i, size_mb=20.0, proc_time=30.0, output_mb=10.0)
                for i in range(1, 8)]
        light = self.scheduler(estimator).plan(
            jobs, make_state(ic_free=[0.0] * 4, ec_free=[0.0, 0.0]))
        heavy = self.scheduler(estimator).plan(
            jobs, make_state(ic_free=[400.0] * 4, ec_free=[0.0, 0.0],
                             pending_completions=[400.0] * 4))
        assert heavy.n_bursted >= light.n_bursted


class TestComputeSizeBounds:
    def test_too_few_candidates(self):
        assert compute_size_bounds([10.0, 20.0], [0, 0, 0]) is None

    def test_equal_thirds_when_queues_empty(self):
        sizes = list(np.linspace(10, 90, 9))
        bounds = compute_size_bounds(sizes, [0.0, 0.0, 0.0])
        assert bounds is not None
        s, m = bounds
        assert s < m
        assert s == pytest.approx(30.0)
        assert m == pytest.approx(60.0)

    def test_loaded_queue_gets_smaller_share(self):
        sizes = list(np.linspace(10, 120, 12))
        balanced = compute_size_bounds(sizes, [1.0, 1.0, 1.0])
        small_loaded = compute_size_bounds(sizes, [100.0, 1.0, 1.0])
        # A saturated small queue shrinks the small interval.
        assert small_loaded[0] <= balanced[0]

    def test_bounds_strictly_ordered(self):
        for loads in ([0, 0, 0], [5, 1, 1], [1, 5, 1], [1, 1, 5]):
            bounds = compute_size_bounds([10.0, 10.0, 10.0, 10.0], loads)
            assert bounds[0] < bounds[1]

    def test_bounds_are_observed_sizes(self):
        sizes = [10.0, 50.0, 200.0, 30.0, 80.0, 250.0]
        s, m = compute_size_bounds(sizes, [0, 0, 0])
        assert s in sizes and (m in sizes or m > s)


class TestSizeIntervalScheduler:
    def test_wants_split_queues(self):
        sched = SizeIntervalSplittingScheduler(StubEstimator())
        assert sched.wants_size_interval_queues()
        assert not OrderPreservingScheduler(StubEstimator()).wants_size_interval_queues()

    def test_plan_carries_bounds_when_candidates_exist(self):
        sched = SizeIntervalSplittingScheduler(StubEstimator(), enable_chunking=False)
        # Big IC backlog -> every job is a burst candidate (Alg. 3 line 6).
        state = make_state(
            ic_free=[800.0] * 4, ec_free=[0.0, 0.0],
            pending_completions=[800.0] * 4,
            upload_queue_loads_mb=[0.0, 0.0, 0.0],
        )
        jobs = [make_job(job_id=i, size_mb=s, proc_time=30.0, output_mb=5.0)
                for i, s in enumerate([10, 40, 90, 150, 220, 280], 1)]
        plan = sched.plan(jobs, state)
        assert plan.upload_bounds is not None
        s, m = plan.upload_bounds
        assert 0 < s < m

    def test_no_bounds_without_candidates(self):
        sched = SizeIntervalSplittingScheduler(StubEstimator(), enable_chunking=False)
        # Idle IC: nothing qualifies as a burst candidate -> bounds None.
        state = make_state(ic_free=[0.0] * 8, ec_free=[0.0, 0.0],
                           est_up_mbps=0.01, est_down_mbps=0.01)
        jobs = [make_job(job_id=i, size_mb=100.0, proc_time=10.0) for i in range(1, 4)]
        plan = sched.plan(jobs, state)
        assert plan.upload_bounds is None

    def test_placement_logic_matches_op_given_same_state(self):
        """SIBS placement == Op placement when parallelism is equal."""
        jobs = [make_job(job_id=i, size_mb=20.0, proc_time=30.0, output_mb=10.0)
                for i in range(1, 6)]
        op = OrderPreservingScheduler(StubEstimator(), enable_chunking=False)
        sibs = SizeIntervalSplittingScheduler(StubEstimator(), enable_chunking=False)
        s1 = make_state(ic_free=[300.0] * 2, ec_free=[0.0, 0.0],
                        pending_completions=[300.0] * 2)
        s2 = s1.clone()
        p_op = op.plan(jobs, s1)
        p_sibs = sibs.plan(jobs, s2)
        assert [d.placement for d in p_op.decisions] == [
            d.placement for d in p_sibs.decisions
        ]
