"""Queueing-theory formulas and simulator cross-validation."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.queueing import (
    allen_cunneen_wait,
    batch_arrival_scv,
    compare_ic_only_with_theory,
    erlang_c,
    mmc_wait,
    offered_load,
    utilization,
)
from repro.experiments.config import ExperimentSpec
from repro.experiments.runner import build_workload, run_one
from repro.sim.environment import SystemConfig
from repro.workload.distributions import Bucket


class TestFormulas:
    def test_offered_load(self):
        assert offered_load(2.0, 3.0) == 6.0
        with pytest.raises(ValueError):
            offered_load(-1.0, 1.0)

    def test_utilization(self):
        assert utilization(1.0, 4.0, 8) == 0.5
        with pytest.raises(ValueError):
            utilization(1.0, 1.0, 0)

    def test_erlang_c_single_server_equals_rho(self):
        """M/M/1: P(wait) = rho."""
        assert erlang_c(0.5, 1) == pytest.approx(0.5)
        assert erlang_c(0.9, 1) == pytest.approx(0.9)

    def test_erlang_c_saturated(self):
        assert erlang_c(2.0, 2) == 1.0
        assert erlang_c(0.0, 4) == 0.0

    def test_erlang_c_known_value(self):
        """Textbook value: a=2 Erlangs on c=3 servers -> P(wait) ~ 0.4444."""
        assert erlang_c(2.0, 3) == pytest.approx(4 / 9, rel=1e-6)

    def test_mm1_wait_closed_form(self):
        """M/M/1: Wq = rho * E[S] / (1 - rho)."""
        lam, es = 0.5, 1.0  # rho = 0.5
        assert mmc_wait(lam, es, 1) == pytest.approx(0.5 * 1.0 / 0.5)

    def test_mmc_wait_unstable_is_infinite(self):
        assert mmc_wait(3.0, 1.0, 2) == math.inf

    def test_more_servers_less_wait(self):
        w4 = mmc_wait(3.0, 1.0, 4)
        w8 = mmc_wait(3.0, 1.0, 8)
        assert w8 < w4

    def test_batch_scv_poisson_batches(self):
        """Poisson(B) batch sizes: C_a^2 = E[B] + 1."""
        assert batch_arrival_scv(15.0, 15.0) == pytest.approx(16.0)

    def test_batch_scv_deterministic_batches(self):
        assert batch_arrival_scv(10.0, 0.0) == pytest.approx(10.0)

    def test_allen_cunneen_reduces_to_mmc(self):
        """C_a^2 = C_s^2 = 1 recovers the Markovian value."""
        w = allen_cunneen_wait(3.0, 1.0, 4, ca2=1.0, cs2=1.0)
        assert w == pytest.approx(mmc_wait(3.0, 1.0, 4))

    def test_allen_cunneen_scales_with_variability(self):
        lo = allen_cunneen_wait(3.0, 1.0, 4, ca2=0.5, cs2=0.5)
        hi = allen_cunneen_wait(3.0, 1.0, 4, ca2=4.0, cs2=2.0)
        assert hi == pytest.approx(6.0 * lo)

    @given(
        st.floats(min_value=0.05, max_value=50.0),
        st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=200, deadline=None)
    def test_erlang_c_is_probability(self, a, c):
        p = erlang_c(a, c)
        assert 0.0 <= p <= 1.0

    @given(
        st.floats(min_value=0.1, max_value=0.95),
        st.integers(min_value=1, max_value=32),
    )
    @settings(max_examples=100, deadline=None)
    def test_wait_positive_and_finite_when_stable(self, rho, c):
        lam = rho * c  # with E[S] = 1
        w = mmc_wait(lam, 1.0, c)
        assert 0.0 <= w < math.inf


class TestSimulatorCrossValidation:
    def test_moderate_load_matches_theory(self):
        """At ~60% load the simulator agrees with M^[X]/G/c theory."""
        spec = ExperimentSpec(
            bucket=Bucket.SMALL, n_batches=12, system=SystemConfig(seed=7)
        )
        batches = build_workload(spec)
        trace = run_one("ICOnly", spec, batches=batches)
        cmp = compare_ic_only_with_theory(trace, batches)
        # Utilization: tight agreement (finite-run edge effects only).
        assert 0.85 < cmp.utilization_ratio < 1.15
        # Mean wait: within-batch + D/G/c theory is an approximation and
        # the run is finite; sub-factor-2 agreement is the expectation.
        assert 0.5 < cmp.wait_ratio < 1.5
        assert "theory" in cmp.render()

    def test_saturated_load_detected_by_theory(self):
        """Near ρ=1 the analytic wait explodes while the finite run stays
        bounded — the comparison surfaces the regime change."""
        spec = ExperimentSpec(
            bucket=Bucket.UNIFORM, n_batches=12, system=SystemConfig(seed=7)
        )
        batches = build_workload(spec)
        trace = run_one("ICOnly", spec, batches=batches)
        cmp = compare_ic_only_with_theory(trace, batches)
        assert cmp.theory_utilization > 0.9
        # Steady-state theory predicts far more waiting than the finite
        # run can accumulate before it ends.
        assert cmp.theory_mean_wait_s > 4 * cmp.sim_mean_wait_s
