"""Bandwidth model and thread tuner tests."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.bandwidth import (
    SECONDS_PER_DAY,
    DiurnalBandwidthProfile,
    EwmaEstimator,
    TimeOfDayBandwidthEstimator,
)
from repro.models.threads import ThreadTuner, optimal_threads, transfer_cap_mbps


class TestDiurnalProfile:
    def test_positive_everywhere(self):
        p = DiurnalBandwidthProfile(base_mbps=2.0, daily_amplitude=0.9)
        for h in np.linspace(0, 48, 200):
            assert p.mean_at(h * 3600.0) > 0

    def test_floor_enforced(self):
        p = DiurnalBandwidthProfile(base_mbps=2.0, daily_amplitude=5.0, floor_fraction=0.3)
        values = [p.mean_at(h * 3600.0) for h in range(24)]
        assert min(values) >= 0.3 * 2.0 - 1e-12

    def test_peak_near_configured_hour(self):
        p = DiurnalBandwidthProfile(base_mbps=4.0, peak_hour=4.0, half_daily_amplitude=0.0)
        values = {h: p.mean_at(h * 3600.0) for h in range(24)}
        assert max(values, key=values.get) == 4

    def test_daily_periodicity(self):
        p = DiurnalBandwidthProfile()
        assert p.mean_at(3600.0) == pytest.approx(p.mean_at(3600.0 + SECONDS_PER_DAY))

    def test_scaled(self):
        p = DiurnalBandwidthProfile(base_mbps=2.0)
        assert p.scaled(2.0).mean_at(0.0) == pytest.approx(2.0 * p.mean_at(0.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalBandwidthProfile(base_mbps=0.0)
        with pytest.raises(ValueError):
            DiurnalBandwidthProfile(floor_fraction=0.0)


class TestEwma:
    def test_first_update_sets_value(self):
        e = EwmaEstimator(alpha=0.3)
        assert e.value is None
        assert e.update(10.0) == 10.0

    def test_paper_update_equation(self):
        """S_n = alpha*Y_n + (1-alpha)*S_{n-1}, hand-checked."""
        e = EwmaEstimator(alpha=0.25, initial=8.0)
        assert e.update(4.0) == pytest.approx(0.25 * 4.0 + 0.75 * 8.0)
        assert e.update(12.0) == pytest.approx(0.25 * 12.0 + 0.75 * 7.0)

    def test_alpha_one_tracks_exactly(self):
        e = EwmaEstimator(alpha=1.0)
        e.update(5.0)
        e.update(9.0)
        assert e.value == 9.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            EwmaEstimator(alpha=0.0)
        with pytest.raises(ValueError):
            EwmaEstimator(alpha=1.5)
        with pytest.raises(ValueError):
            EwmaEstimator().update(-1.0)

    @given(
        st.floats(min_value=0.01, max_value=1.0),
        st.lists(st.floats(min_value=0.0, max_value=1e4), min_size=1, max_size=100),
    )
    @settings(max_examples=100, deadline=None)
    def test_value_bounded_by_observed_range(self, alpha, values):
        e = EwmaEstimator(alpha=alpha)
        for v in values:
            e.update(v)
        assert min(values) - 1e-9 <= e.value <= max(values) + 1e-9


class TestTimeOfDayEstimator:
    def test_prior_before_any_data(self):
        est = TimeOfDayBandwidthEstimator(prior_mbps=3.0)
        assert est.estimate(0.0) == 3.0

    def test_global_fallback_for_unseen_bin(self):
        est = TimeOfDayBandwidthEstimator(prior_mbps=3.0)
        est.observe(0.0, 10.0)  # bin 0
        # Bin for hour 12 has no data -> global EWMA.
        assert est.estimate(12 * 3600.0) == 10.0

    def test_binned_estimates_differ_by_hour(self):
        est = TimeOfDayBandwidthEstimator(alpha=1.0)
        est.observe(0.0, 10.0)            # midnight bin
        est.observe(12 * 3600.0, 2.0)     # noon bin
        assert est.estimate(0.0) == 10.0
        assert est.estimate(12 * 3600.0) == 2.0

    def test_same_hour_next_day_shares_bin(self):
        est = TimeOfDayBandwidthEstimator(alpha=1.0)
        est.observe(3600.0, 6.0)
        assert est.estimate(3600.0 + SECONDS_PER_DAY) == 6.0

    def test_bin_values_nan_where_unobserved(self):
        est = TimeOfDayBandwidthEstimator(n_bins=24)
        est.observe(0.0, 5.0)
        values = est.bin_values()
        assert values[0] == 5.0
        assert np.isnan(values[5])

    def test_samples_recorded(self):
        est = TimeOfDayBandwidthEstimator()
        est.observe(10.0, 5.0)
        est.observe(20.0, 6.0)
        assert est.samples == [(10.0, 5.0), (20.0, 6.0)]
        assert est.n_observations == 2

    def test_invalid_bins(self):
        with pytest.raises(ValueError):
            TimeOfDayBandwidthEstimator(n_bins=0)


class TestThreadHelpers:
    def test_transfer_cap(self):
        assert transfer_cap_mbps(4, 0.5) == 2.0
        with pytest.raises(ValueError):
            transfer_cap_mbps(0, 0.5)
        with pytest.raises(ValueError):
            transfer_cap_mbps(1, 0.0)

    def test_optimal_threads_is_knee(self):
        assert optimal_threads(4.0, 0.5) == 8
        assert optimal_threads(4.1, 0.5) == 9
        assert optimal_threads(0.0, 0.5) == 1
        assert optimal_threads(1000.0, 0.5, max_threads=16) == 16


class TestThreadTuner:
    def _measure(self, threads: int, capacity: float, per_thread: float) -> float:
        return min(threads * per_thread, capacity)

    def test_converges_near_knee(self):
        """Hill climbing settles within +/-2 of the saturation knee."""
        capacity, per_thread = 4.0, 0.5
        tuner = ThreadTuner(initial_threads=2, max_threads=16, n_bins=1)
        for _ in range(60):
            k = tuner.threads_for(0.0)
            tuner.report(0.0, k, self._measure(k, capacity, per_thread))
        knee = optimal_threads(capacity, per_thread)
        settled = tuner.threads_for(0.0)
        assert abs(settled - knee) <= 2

    def test_adapts_when_capacity_rises(self):
        tuner = ThreadTuner(initial_threads=2, max_threads=32, n_bins=1)
        for _ in range(40):
            k = tuner.threads_for(0.0)
            tuner.report(0.0, k, self._measure(k, 2.0, 0.5))
        low = tuner.threads_for(0.0)
        for _ in range(60):
            k = tuner.threads_for(0.0)
            tuner.report(0.0, k, self._measure(k, 8.0, 0.5))
        assert tuner.threads_for(0.0) > low

    def test_per_bin_independence(self):
        tuner = ThreadTuner(initial_threads=4, max_threads=16, n_bins=24)
        noon = 12 * 3600.0
        for _ in range(30):
            k = tuner.threads_for(0.0)
            tuner.report(0.0, k, self._measure(k, 8.0, 0.5))
        assert tuner.threads_for(noon) == 4  # untouched bin keeps its default

    def test_stale_measurement_does_not_move_setting(self):
        tuner = ThreadTuner(initial_threads=4, max_threads=16, n_bins=1)
        before = tuner.threads_for(0.0)
        tuner.report(0.0, threads_used=before + 3, throughput_mbps=99.0)
        assert tuner.threads_for(0.0) == before

    def test_bounds_respected(self):
        tuner = ThreadTuner(initial_threads=2, min_threads=1, max_threads=4, n_bins=1)
        for _ in range(50):
            k = tuner.threads_for(0.0)
            tuner.report(0.0, k, k * 10.0)  # always improving -> climb
        assert tuner.threads_for(0.0) <= 4

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            ThreadTuner(initial_threads=0)
        with pytest.raises(ValueError):
            ThreadTuner(n_bins=0)
        tuner = ThreadTuner()
        with pytest.raises(ValueError):
            tuner.report(0.0, 2, -5.0)

    def test_bin_settings_shape(self):
        tuner = ThreadTuner(n_bins=24)
        assert tuner.bin_settings().shape == (24,)
