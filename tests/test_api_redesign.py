"""Tests for the unified CLI / Session API redesign and its deprecation shims.

Pins the four contracts the redesign sold:

* the legacy ``repro-experiment`` entry point still works but warns and
  forwards to the unified ``repro`` CLI (one release of grace);
* the unified :class:`~repro.sim.environment.Session` drives a workload to
  the *identical* trace the classic offline ``run`` produces;
* keyword-only configs reject the positional calls the old API allowed;
* renamed fields (UNI001 unit suffixes) keep their old names alive as
  warning aliases for one release.

The bench harness schema test lives here too: ``BENCH_core.json`` is part
of the new public surface (CI uploads it), so its shape is pinned.
"""

from __future__ import annotations

import json

import pytest

import repro.experiments.cli as legacy_cli
from repro.analysis.determinism import hash_trace
from repro.experiments.runner import make_scheduler
from repro.metrics.tickets import ProportionalTicket
from repro.perf.harness import SCHEMA_VERSION, BenchPreset, run_bench
from repro.service import LoadGenConfig
from repro.sim.environment import CloudBurstEnvironment, ECSiteSpec, SystemConfig
from repro.workload.distributions import Bucket
from repro.workload.generator import WorkloadGenerator


def _pretrained_env(config: SystemConfig) -> CloudBurstEnvironment:
    env = CloudBurstEnvironment(config)
    gen = WorkloadGenerator(bucket=Bucket.UNIFORM, seed=11)
    env.pretrain_qrsm(*gen.sample_training_set(150))
    return env


# ----------------------------------------------------------------------
# Deprecated CLI shim
# ----------------------------------------------------------------------
class TestLegacyCliShim:
    def test_legacy_main_warns_and_forwards(self):
        """The old entry point must warn, then behave as the unified CLI."""
        with pytest.warns(DeprecationWarning, match="unified `repro` command"):
            with pytest.raises(SystemExit) as excinfo:
                legacy_cli.main(["--help"])
        assert excinfo.value.code == 0

    def test_render_sugar_still_expands(self):
        assert legacy_cli.expand_render_sugar(["fig6"]) == ["render", "fig6"]
        assert legacy_cli.expand_render_sugar(["all"]) == ["render", "all"]
        # Non-target leading words pass through untouched.
        assert legacy_cli.expand_render_sugar(["check"]) == ["check"]

    def test_unified_cli_mounts_experiment_commands(self):
        from repro.cli import build_parser

        text = build_parser().format_help()
        for command in legacy_cli.EXPERIMENT_COMMANDS:
            assert command in text
        assert "bench" in text


# ----------------------------------------------------------------------
# Session API
# ----------------------------------------------------------------------
class TestSessionEquivalence:
    def test_incremental_session_matches_offline_run(self, fast_config, small_workload):
        """Pushing batches through a Session reproduces env.run() exactly."""
        offline = _pretrained_env(fast_config)
        trace_a = offline.run(small_workload, make_scheduler("Op", offline))

        online = _pretrained_env(fast_config)
        with online.session(make_scheduler("Op", online)) as s:
            for batch in small_workload:
                s.submit(batch.jobs, at=batch.arrival_time, batch_id=batch.batch_id)
        trace_b = s.trace

        assert hash_trace(trace_a) == hash_trace(trace_b)

    def test_context_exit_finalises_once(self, fast_config, small_workload):
        env = _pretrained_env(fast_config)
        with env.session(make_scheduler("Greedy", env)) as s:
            batch = small_workload[0]
            s.submit(batch.jobs, at=batch.arrival_time)
            assert not s.finished
        assert s.finished
        assert s.trace.records  # drained to completion on clean exit
        with pytest.raises(RuntimeError, match="already finished"):
            s.submit(small_workload[1].jobs)


# ----------------------------------------------------------------------
# Keyword-only configs (UNI001 API pass)
# ----------------------------------------------------------------------
class TestKeywordOnlyConfigs:
    def test_system_config_rejects_positional_args(self):
        with pytest.raises(TypeError):
            SystemConfig(8)  # type: ignore[misc]

    def test_ec_site_spec_rejects_positional_args(self):
        with pytest.raises(TypeError):
            ECSiteSpec("emr-west")  # type: ignore[misc]


# ----------------------------------------------------------------------
# One-release deprecation aliases
# ----------------------------------------------------------------------
class TestDeprecationAliases:
    def test_proportional_ticket_base_kwarg_maps(self):
        with pytest.warns(DeprecationWarning, match="base_s"):
            ticket = ProportionalTicket(base=45.0, factor=3.0)
        assert ticket.base_s == 45.0

    def test_proportional_ticket_base_property_warns(self):
        ticket = ProportionalTicket(base_s=45.0, factor=3.0)
        with pytest.warns(DeprecationWarning, match="base_s"):
            assert ticket.base == 45.0

    def test_loadgen_mean_burst_kwarg_maps(self):
        with pytest.warns(DeprecationWarning, match="mean_burst_jobs"):
            config = LoadGenConfig(n_jobs=10, mean_burst=4.0)
        assert config.mean_burst_jobs == 4.0

    def test_loadgen_mean_burst_property_warns(self):
        config = LoadGenConfig(n_jobs=10, mean_burst_jobs=4.0)
        with pytest.warns(DeprecationWarning, match="mean_burst_jobs"):
            assert config.mean_burst == 4.0

    def test_new_spellings_stay_silent(self, recwarn):
        ProportionalTicket(base_s=45.0, factor=3.0)
        LoadGenConfig(n_jobs=10, mean_burst_jobs=4.0)
        assert not [w for w in recwarn if w.category is DeprecationWarning]


# ----------------------------------------------------------------------
# Bench harness report schema
# ----------------------------------------------------------------------
class TestBenchReportSchema:
    def test_report_written_with_pinned_schema(self, tmp_path):
        out = tmp_path / "bench.json"
        preset = BenchPreset(
            engine_events=1500,
            offline_n_batches=2,
            offline_reps=1,
            loadgen_jobs=15,
        )
        report = run_bench(smoke=True, out_path=out, preset=preset)
        assert report.path == out
        data = json.loads(out.read_text())
        assert data["schema_version"] == SCHEMA_VERSION
        assert data["smoke"] is True
        assert data["preset"]["engine_events"] == 1500

        scenarios = data["scenarios"]
        assert scenarios["engine"]["n_events"] == 1500
        assert scenarios["engine"]["events_per_s"] > 0
        offline = scenarios["offline"]["schedulers"]
        assert set(offline) == {"ICOnly", "Greedy", "Op", "OpSIBS"}
        for row in offline.values():
            assert row["wall_s_p50"] > 0
            assert row["records"] > 0
        loadgen = scenarios["loadgen"]
        assert loadgen["n_jobs"] == 15
        assert loadgen["jobs_per_s"] > 0
        assert loadgen["quote_p95_ms"] >= loadgen["quote_p50_ms"] >= 0

    def test_render_mentions_every_scenario(self, tmp_path):
        preset = BenchPreset(
            engine_events=1000,
            offline_n_batches=2,
            offline_reps=1,
            loadgen_jobs=10,
        )
        report = run_bench(smoke=True, out_path=tmp_path / "b.json", preset=preset)
        text = report.render()
        assert "engine" in text and "offline" in text and "loadgen" in text
