"""Tests for the unified CLI / Session API redesign.

Pins the contracts the redesign sold, now that the one-release
deprecation window has closed:

* the legacy ``repro-experiment`` entry point and its warning aliases
  (``ProportionalTicket.base``, ``LoadGenConfig.mean_burst``) are *gone*
  — old spellings fail loudly instead of warning;
* the unified :class:`~repro.sim.environment.Session` drives a workload to
  the *identical* trace the classic offline ``run`` produces;
* keyword-only configs reject the positional calls the old API allowed.

The bench harness schema test lives here too: ``BENCH_core.json`` is part
of the new public surface (CI uploads it), so its shape is pinned.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

import repro.experiments.cli as experiments_cli
from repro.analysis.determinism import hash_trace
from repro.experiments.runner import make_scheduler
from repro.metrics.tickets import ProportionalTicket
from repro.perf.harness import SCHEMA_VERSION, BenchPreset, run_bench
from repro.service import LoadGenConfig
from repro.sim.environment import CloudBurstEnvironment, ECSiteSpec, SystemConfig
from repro.workload.distributions import Bucket
from repro.workload.generator import WorkloadGenerator


def _pretrained_env(config: SystemConfig) -> CloudBurstEnvironment:
    env = CloudBurstEnvironment(config)
    gen = WorkloadGenerator(bucket=Bucket.UNIFORM, seed=11)
    env.pretrain_qrsm(*gen.sample_training_set(150))
    return env


# ----------------------------------------------------------------------
# The unified CLI owns the experiment surface
# ----------------------------------------------------------------------
class TestUnifiedCli:
    def test_legacy_entry_point_is_gone(self):
        """The deprecation window closed: no ``main`` shim remains."""
        assert not hasattr(experiments_cli, "main")

    def test_render_sugar_still_expands(self):
        assert experiments_cli.expand_render_sugar(["fig6"]) == ["render", "fig6"]
        assert experiments_cli.expand_render_sugar(["all"]) == ["render", "all"]
        # Non-target leading words pass through untouched.
        assert experiments_cli.expand_render_sugar(["check"]) == ["check"]

    def test_unified_cli_mounts_experiment_commands(self):
        from repro.cli import build_parser

        text = build_parser().format_help()
        for command in experiments_cli.EXPERIMENT_COMMANDS:
            assert command in text
        assert "bench" in text
        assert "econ" in text


# ----------------------------------------------------------------------
# Session API
# ----------------------------------------------------------------------
class TestSessionEquivalence:
    def test_incremental_session_matches_offline_run(self, fast_config, small_workload):
        """Pushing batches through a Session reproduces env.run() exactly."""
        offline = _pretrained_env(fast_config)
        trace_a = offline.run(small_workload, make_scheduler("Op", offline))

        online = _pretrained_env(fast_config)
        with online.session(make_scheduler("Op", online)) as s:
            for batch in small_workload:
                s.submit(batch.jobs, at=batch.arrival_time, batch_id=batch.batch_id)
        trace_b = s.trace

        assert hash_trace(trace_a) == hash_trace(trace_b)

    def test_context_exit_finalises_once(self, fast_config, small_workload):
        env = _pretrained_env(fast_config)
        with env.session(make_scheduler("Greedy", env)) as s:
            batch = small_workload[0]
            s.submit(batch.jobs, at=batch.arrival_time)
            assert not s.finished
        assert s.finished
        assert s.trace.records  # drained to completion on clean exit
        with pytest.raises(RuntimeError, match="already finished"):
            s.submit(small_workload[1].jobs)


# ----------------------------------------------------------------------
# Keyword-only configs (UNI001 API pass)
# ----------------------------------------------------------------------
class TestKeywordOnlyConfigs:
    def test_system_config_rejects_positional_args(self):
        with pytest.raises(TypeError):
            SystemConfig(8)  # type: ignore[misc]

    def test_ec_site_spec_rejects_positional_args(self):
        with pytest.raises(TypeError):
            ECSiteSpec("emr-west")  # type: ignore[misc]


# ----------------------------------------------------------------------
# Deprecation aliases are removed (window closed)
# ----------------------------------------------------------------------
class TestAliasesRemoved:
    def test_proportional_ticket_base_kwarg_rejected(self):
        with pytest.raises(TypeError):
            ProportionalTicket(base=45.0, factor=3.0)  # type: ignore[call-arg]

    def test_proportional_ticket_has_no_base_attribute(self):
        ticket = ProportionalTicket(base_s=45.0, factor=3.0)
        assert ticket.base_s == 45.0
        assert not hasattr(ticket, "base")

    def test_loadgen_mean_burst_kwarg_rejected(self):
        with pytest.raises(TypeError):
            LoadGenConfig(n_jobs=10, mean_burst=4.0)  # type: ignore[call-arg]

    def test_loadgen_has_no_mean_burst_attribute(self):
        config = LoadGenConfig(n_jobs=10, mean_burst_jobs=4.0)
        assert config.mean_burst_jobs == 4.0
        assert not hasattr(config, "mean_burst")

    def test_new_spellings_stay_silent(self, recwarn):
        ProportionalTicket(base_s=45.0, factor=3.0)
        LoadGenConfig(n_jobs=10, mean_burst_jobs=4.0)
        assert not [w for w in recwarn if w.category is DeprecationWarning]

    def test_validation_still_enforced(self):
        with pytest.raises(ValueError):
            ProportionalTicket(base_s=-1.0)
        with pytest.raises(ValueError):
            LoadGenConfig(n_jobs=10, mean_burst_jobs=0.5)


# ----------------------------------------------------------------------
# Bench harness report schema
# ----------------------------------------------------------------------
class TestBenchReportSchema:
    def test_report_written_with_pinned_schema(self, tmp_path):
        out = tmp_path / "bench.json"
        preset = BenchPreset(
            engine_events=1500,
            offline_n_batches=2,
            offline_reps=1,
            loadgen_jobs=15,
            loadgen_bursty_jobs=12,
            fleet_jobs=60,
            fleet_shards=2,
            fleet_reps=2,
            fleet_procs_jobs=60,
            policy_jobs=40,
            policy_reps=2,
        )
        report = run_bench(smoke=True, out_path=out, preset=preset)
        assert report.path == out
        data = json.loads(out.read_text())
        assert data["schema_version"] == SCHEMA_VERSION
        assert data["smoke"] is True
        assert data["preset"]["engine_events"] == 1500
        assert data["preset"]["loadgen_bursty_jobs"] == 12

        scenarios = data["scenarios"]
        assert scenarios["engine"]["n_events"] == 1500
        assert scenarios["engine"]["events_per_s"] > 0
        offline = scenarios["offline"]["schedulers"]
        assert set(offline) == {"ICOnly", "Greedy", "Op", "OpSIBS"}
        for row in offline.values():
            assert row["wall_s_p50"] > 0
            assert row["records"] > 0
        loadgen = scenarios["loadgen"]
        assert loadgen["n_jobs"] == 15
        assert loadgen["process"] == "poisson"
        assert loadgen["jobs_per_s"] > 0
        assert loadgen["quote_p95_ms"] >= loadgen["quote_p50_ms"] >= 0
        bursty = scenarios["loadgen_bursty"]
        assert bursty["n_jobs"] == 12
        assert bursty["process"] == "bursty"
        assert bursty["jobs_per_s"] > 0
        pc = scenarios["policy_convergence"]
        assert pc["n_jobs"] == 40
        assert pc["reps"] == 2
        assert pc["ticks"] > 0
        assert pc["steps_applied"] == 0
        assert pc["plain_cpu_s"] > 0 and pc["policy_cpu_s"] > 0
        assert len(pc["audit_sha256"]) == 64
        fleet = scenarios["fleet_loadgen"]
        assert fleet["n_jobs"] == 60
        assert fleet["n_shards"] == 2
        assert fleet["reps"] == 2
        assert fleet["aggregate_jobs_per_s"] >= fleet["serial_jobs_per_s"] > 0
        assert len(fleet["fleet_sha256"]) == 64
        assert fleet["quota_rejected"] >= 0
        procs = scenarios["fleet_loadgen_procs"]
        assert procs["executor"] == "multiprocess"
        assert procs["n_jobs"] == 60
        assert procs["aggregate_jobs_per_s"] > 0
        assert procs["inprocess_serial_jobs_per_s"] > 0
        assert procs["speedup_vs_inprocess"] > 0
        # The scenario itself enforces executor parity; the digest it
        # reports is the same workload the in-process scenario hashed.
        assert procs["fleet_sha256"] == fleet["fleet_sha256"]

    def test_fleet_scenario_skipped_when_zeroed(self, tmp_path):
        preset = BenchPreset(
            engine_events=1000,
            offline_n_batches=2,
            offline_reps=1,
            loadgen_jobs=10,
        )
        report = run_bench(smoke=True, out_path=tmp_path / "b.json", preset=preset)
        assert "fleet_loadgen" not in report.scenarios
        assert "fleet_loadgen_procs" not in report.scenarios
        assert "policy_convergence" not in report.scenarios

    def test_committed_bench_artifact_meets_fleet_target(self):
        """BENCH_core.json is the acceptance artifact: schema v4 with the
        fleet scenario sustaining >=100k jobs/s aggregate over >=4 shards."""
        bench_path = Path(__file__).resolve().parent.parent / "BENCH_core.json"
        data = json.loads(bench_path.read_text())
        assert data["schema_version"] == SCHEMA_VERSION
        fleet = data["scenarios"]["fleet_loadgen"]
        assert fleet["n_shards"] >= 4
        assert fleet["aggregate_jobs_per_s"] >= 100_000
        assert len(fleet["fleet_sha256"]) == 64

    def test_committed_bench_artifact_meets_procs_target(self):
        """ISSUE 8 acceptance: the multiprocess executor sustains >=2x
        the in-process serial rate on >=4 shards (CPU-clock aggregate —
        the one-core-per-shard deployment figure), and its digest is the
        same workload digest the in-process fleet scenario reports."""
        bench_path = Path(__file__).resolve().parent.parent / "BENCH_core.json"
        data = json.loads(bench_path.read_text())
        procs = data["scenarios"]["fleet_loadgen_procs"]
        assert procs["executor"] == "multiprocess"
        assert procs["n_shards"] >= 4
        assert procs["speedup_vs_inprocess"] >= 2.0
        assert len(procs["fleet_sha256"]) == 64

    def test_committed_bench_artifact_meets_obs_budget(self):
        """PR 9 acceptance: attaching the full telemetry catalogue costs
        at most 5% of the broker hot path (CPU clock, min over reps)."""
        bench_path = Path(__file__).resolve().parent.parent / "BENCH_core.json"
        data = json.loads(bench_path.read_text())
        ov = data["scenarios"]["obs_overhead"]
        assert ov["n_metric_families"] >= 10
        assert ov["spans_kept"] > 0
        assert ov["plain_cpu_s"] > 0 and ov["obs_cpu_s"] > 0
        assert ov["overhead_pct"] <= 5.0

    def test_committed_bench_artifact_meets_policy_budget(self):
        """ISSUE 10 acceptance: running the convergence autoscaler's full
        observe/resolve/audit loop (steady-state policy, zero steps)
        costs at most 5% of the broker hot path, and the control plane
        is deterministic across bench reps."""
        bench_path = Path(__file__).resolve().parent.parent / "BENCH_core.json"
        data = json.loads(bench_path.read_text())
        pc = data["scenarios"]["policy_convergence"]
        assert pc["ticks"] > 0
        assert pc["steps_applied"] == 0
        assert pc["plain_cpu_s"] > 0 and pc["policy_cpu_s"] > 0
        assert pc["overhead_pct"] <= 5.0
        assert len(pc["audit_sha256"]) == 64

    def test_bursty_scenario_skipped_when_zeroed(self, tmp_path):
        preset = BenchPreset(
            engine_events=1000,
            offline_n_batches=2,
            offline_reps=1,
            loadgen_jobs=10,
            loadgen_bursty_jobs=0,
        )
        report = run_bench(smoke=True, out_path=tmp_path / "b.json", preset=preset)
        assert "loadgen_bursty" not in report.scenarios

    def test_render_mentions_every_scenario(self, tmp_path):
        preset = BenchPreset(
            engine_events=1000,
            offline_n_batches=2,
            offline_reps=1,
            loadgen_jobs=10,
            loadgen_bursty_jobs=10,
        )
        report = run_bench(smoke=True, out_path=tmp_path / "b.json", preset=preset)
        text = report.render()
        assert "engine" in text and "offline" in text
        assert "loadgen" in text and "loadgen_bursty" in text
