"""Unit tests for the declarative policy plane (repro.policy.model/loader)."""

from __future__ import annotations

import json

import pytest

from repro.policy import (
    ACTION_KINDS,
    TRIGGER_KINDS,
    CapacityObservation,
    PolicyConfig,
    PolicyInput,
    PolicySchemaError,
    PolicySet,
    ScalingPolicy,
    config_to_dict,
    dump_policy_config,
    load_policy_config,
    parse_policy_config,
)


def obs(**overrides) -> CapacityObservation:
    base = dict(
        total=4, online=4, offline=0, draining=0,
        pending=0, busy=2, idle=2, queue_length=0,
    )
    base.update(overrides)
    return CapacityObservation(**base)


def snap(observation=None, **overrides) -> PolicyInput:
    base = dict(
        now_s=600.0,
        prev_tick_s=540.0,
        interval_s=60.0,
        observation=observation if observation is not None else obs(),
    )
    base.update(overrides)
    return PolicyInput(**base)


class TestCapacityObservation:
    def test_gross_counts_every_machine_plus_pending(self):
        o = obs(total=6, online=3, offline=2, draining=1, pending=2)
        assert o.gross == 8

    def test_effective_counts_dispatchable_plus_pending(self):
        o = obs(total=6, online=3, offline=2, draining=1, pending=2)
        assert o.effective == 5

    def test_as_dict_round_trips(self):
        o = obs(total=5, busy=3, idle=1, online=4, offline=1)
        assert CapacityObservation(**o.as_dict()) == o


class TestTriggers:
    def test_always_fires_unconditionally(self):
        p = ScalingPolicy(name="p", action="target", amount=4)
        assert p.triggered(snap())

    def test_queue_needs_threshold(self):
        p = ScalingPolicy(
            name="p", action="step_up", trigger="queue", queue_at_least=3
        )
        assert not p.triggered(snap(obs(queue_length=2)))
        assert p.triggered(snap(obs(queue_length=3)))

    def test_idle_needs_empty_queue_and_idle_machines(self):
        p = ScalingPolicy(
            name="p", action="step_down", trigger="idle", idle_at_least=2
        )
        assert p.triggered(snap(obs(queue_length=0, idle=2)))
        assert not p.triggered(snap(obs(queue_length=1, idle=4)))
        assert not p.triggered(snap(obs(queue_length=0, idle=1)))

    def test_sla_stays_quiet_without_attainment_data(self):
        p = ScalingPolicy(
            name="p", action="step_up", trigger="sla",
            min_attainment_ratio=0.9,
        )
        assert not p.triggered(snap(attainment_ratio=None))
        assert p.triggered(snap(attainment_ratio=0.8))
        assert not p.triggered(snap(attainment_ratio=0.95))

    def test_cost_stays_quiet_without_a_ledger(self):
        p = ScalingPolicy(
            name="p", action="step_down", trigger="cost", budget_usd=10.0
        )
        assert not p.triggered(snap(spend_usd=None))
        assert not p.triggered(snap(spend_usd=9.99))
        assert p.triggered(snap(spend_usd=10.0))

    def test_scheduled_fires_once_per_period_boundary(self):
        p = ScalingPolicy(
            name="p", action="target", amount=8, trigger="scheduled",
            period_s=1000.0,
        )
        # First tick ever: the boundary at t=0 has not been seen.
        assert p.triggered(snap(now_s=60.0, prev_tick_s=None))
        # Previous tick was before the t=1000 boundary, now is after.
        assert p.triggered(snap(now_s=1020.0, prev_tick_s=960.0))
        # Both ticks inside the same period: quiet.
        assert not p.triggered(snap(now_s=1080.0, prev_tick_s=1020.0))

    def test_scheduled_respects_phase(self):
        p = ScalingPolicy(
            name="p", action="target", amount=8, trigger="scheduled",
            period_s=1000.0, phase_s=500.0,
        )
        # Before the first (phased) boundary nothing has happened yet.
        assert not p.triggered(snap(now_s=400.0, prev_tick_s=300.0))
        assert p.triggered(snap(now_s=520.0, prev_tick_s=460.0))

    def test_webhook_consumes_named_signal_only(self):
        p = ScalingPolicy(
            name="p", action="step_up", trigger="webhook", webhook="burst"
        )
        assert not p.triggered(snap())
        assert not p.triggered(snap(webhooks=frozenset({"other"})))
        assert p.triggered(snap(webhooks=frozenset({"burst"})))


class TestPropose:
    def test_target_ignores_basis(self):
        p = ScalingPolicy(name="p", action="target", amount=8)
        assert p.propose(3) == 8

    def test_steps_are_relative_to_basis(self):
        up = ScalingPolicy(name="u", action="step_up", amount=2)
        down = ScalingPolicy(name="d", action="step_down", amount=2)
        assert up.propose(4) == 6
        assert down.propose(4) == 2

    def test_proposals_clamped_to_bounds(self):
        p = ScalingPolicy(
            name="p", action="step_up", amount=10,
            min_capacity=2, max_capacity=6,
        )
        assert p.propose(5) == 6
        down = ScalingPolicy(
            name="d", action="step_down", amount=10,
            min_capacity=2, max_capacity=6,
        )
        assert down.propose(5) == 2


class TestValidation:
    def test_rejects_unknown_action_and_trigger(self):
        with pytest.raises(ValueError, match="unknown action"):
            ScalingPolicy(name="p", action="shrink")
        with pytest.raises(ValueError, match="unknown trigger"):
            ScalingPolicy(name="p", action="target", trigger="sometimes")

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError, match="min_capacity"):
            ScalingPolicy(
                name="p", action="target", min_capacity=5, max_capacity=2
            )

    def test_webhook_trigger_needs_a_name(self):
        with pytest.raises(ValueError, match="webhook"):
            ScalingPolicy(name="p", action="step_up", trigger="webhook")

    def test_kind_tuples_are_stable(self):
        assert ACTION_KINDS == ("target", "step_up", "step_down")
        assert TRIGGER_KINDS[0] == "always" and "webhook" in TRIGGER_KINDS


class TestPolicySet:
    def test_duplicate_names_rejected(self):
        a = ScalingPolicy(name="a", action="target", amount=2)
        with pytest.raises(ValueError, match="duplicate policy name"):
            PolicySet([a, ScalingPolicy(name="a", action="step_up")])

    def test_winner_is_highest_severity(self):
        lo = ScalingPolicy(name="lo", action="target", amount=2, severity=1)
        hi = ScalingPolicy(name="hi", action="target", amount=8, severity=9)
        ps = PolicySet([lo, hi])
        assert ps.resolution_order([lo, hi])[0] is hi

    def test_registration_order_breaks_ties(self):
        first = ScalingPolicy(name="first", action="target", severity=5)
        second = ScalingPolicy(name="second", action="target", severity=5)
        ps = PolicySet([first, second])
        assert [p.name for p in ps.resolution_order([second, first])] == [
            "first", "second",
        ]

    def test_lookup_and_names(self):
        a = ScalingPolicy(name="a", action="target")
        ps = PolicySet([a])
        assert ps.policy("a") is a
        assert ps.names() == ("a",)
        with pytest.raises(KeyError):
            ps.policy("missing")


class TestLoader:
    def test_round_trip_is_identity(self):
        config = PolicyConfig(
            policies=(
                ScalingPolicy(
                    name="burst", action="step_up", amount=2,
                    trigger="queue", queue_at_least=4, severity=10,
                    cooldown_s=300.0, max_capacity=16,
                ),
                ScalingPolicy(
                    name="cron", action="target", amount=12,
                    trigger="scheduled", period_s=86400.0, phase_s=3600.0,
                ),
            ),
        )
        doc = config_to_dict(config)
        assert parse_policy_config(doc) == config
        # And through the JSON dump as well.
        assert parse_policy_config(json.loads(dump_policy_config(config))) == config

    def test_unknown_keys_rejected_with_path(self):
        with pytest.raises(PolicySchemaError, match=r"policies\[0\].*'colour'"):
            parse_policy_config(
                {"policies": [{"name": "p", "action": "target", "colour": 1}]}
            )

    def test_missing_required_key(self):
        with pytest.raises(PolicySchemaError, match="missing required key 'action'"):
            parse_policy_config({"policies": [{"name": "p"}]})

    def test_type_errors_are_path_qualified(self):
        with pytest.raises(
            PolicySchemaError, match=r"policies\[1\].cooldown_s"
        ):
            parse_policy_config(
                {
                    "policies": [
                        {"name": "a", "action": "target"},
                        {"name": "b", "action": "target", "cooldown_s": "long"},
                    ]
                }
            )

    def test_bool_is_not_an_int(self):
        with pytest.raises(PolicySchemaError, match="expected an integer"):
            parse_policy_config(
                {"policies": [{"name": "p", "action": "target", "amount": True}]}
            )

    def test_range_errors_surface_as_schema_errors(self):
        with pytest.raises(PolicySchemaError, match=r"policies\[0\]: amount"):
            parse_policy_config(
                {"policies": [{"name": "p", "action": "target", "amount": 0}]}
            )

    def test_duplicate_policy_names_rejected(self):
        with pytest.raises(PolicySchemaError, match="duplicate policy name"):
            parse_policy_config(
                {
                    "policies": [
                        {"name": "p", "action": "target"},
                        {"name": "p", "action": "step_up"},
                    ]
                }
            )

    def test_converger_table_validated(self):
        with pytest.raises(PolicySchemaError, match="converger.basis"):
            parse_policy_config({"converger": {"basis": "sideways"}})
        with pytest.raises(PolicySchemaError, match="interval must be positive"):
            parse_policy_config({"converger": {"interval_s": 0.0}})

    def test_json_file_loads(self, tmp_path):
        path = tmp_path / "p.json"
        path.write_text(
            json.dumps(
                {"policies": [{"name": "p", "action": "target", "amount": 3}]}
            )
        )
        config = load_policy_config(path)
        assert config.policies[0].amount == 3

    def test_invalid_json_reports_the_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(PolicySchemaError, match="invalid JSON"):
            load_policy_config(path)

    def test_unsupported_extension(self, tmp_path):
        path = tmp_path / "p.yaml"
        path.write_text("policies: []")
        with pytest.raises(PolicySchemaError, match="unsupported extension"):
            load_policy_config(path)

    def test_toml_file_loads_when_tomllib_present(self, tmp_path):
        from repro.policy import loader as loader_mod

        path = tmp_path / "p.toml"
        path.write_text(
            '[[policies]]\nname = "p"\naction = "target"\namount = 5\n'
        )
        if loader_mod.tomllib is None:
            with pytest.raises(PolicySchemaError, match="Python 3.11"):
                load_policy_config(path)
        else:
            assert load_policy_config(path).policies[0].amount == 5

    def test_toml_gated_on_old_interpreters(self, tmp_path, monkeypatch):
        from repro.policy import loader as loader_mod

        monkeypatch.setattr(loader_mod, "tomllib", None)
        path = tmp_path / "p.toml"
        path.write_text('[[policies]]\nname = "p"\naction = "target"\n')
        with pytest.raises(PolicySchemaError, match="rewrite the file as JSON"):
            load_policy_config(path)

    def test_example_files_validate(self):
        from pathlib import Path

        from repro.policy import loader as loader_mod

        examples = Path(__file__).resolve().parent.parent / "examples" / "policies"
        config = load_policy_config(examples / "burst-idle.json")
        assert len(config.policies) == 3
        if loader_mod.tomllib is not None:
            toml_config = load_policy_config(examples / "office-hours.toml")
            assert len(toml_config.policies) == 3
