"""Tests for the online broker subsystem (repro.service).

The anchor test is offline/online equivalence: replaying an offline
workload through the broker under the accept-all policy must reproduce the
offline runner's trace *identically* for every paper scheduler. Around it:
quoting, each admission branch, backpressure under overload, streaming
counters and the load driver.
"""

from __future__ import annotations

import math
from dataclasses import asdict

import pytest

from repro.experiments.config import ExperimentSpec
from repro.experiments.runner import (
    PAPER_SCHEDULERS,
    build_workload,
    make_scheduler,
    run_one,
)
from repro.metrics.streaming import ReservoirSampler, StreamingSLAStats
from repro.metrics.tickets import FixedSlaTicket, ProportionalTicket
from repro.service import (
    AdmissionDecision,
    BurstBroker,
    LoadGenConfig,
    SLAPolicy,
    generate_arrivals,
    quote_job,
    run_load,
    run_one_online,
)
from repro.sim.environment import CloudBurstEnvironment
from repro.workload.distributions import Bucket
from repro.workload.generator import WorkloadGenerator

from .conftest import make_job


@pytest.fixture
def env(fast_config) -> CloudBurstEnvironment:
    env = CloudBurstEnvironment(fast_config)
    gen = WorkloadGenerator(bucket=Bucket.UNIFORM, seed=11)
    env.pretrain_qrsm(*gen.sample_training_set(150))
    return env


# ----------------------------------------------------------------------
# Quoting
# ----------------------------------------------------------------------
class TestQuoting:
    def test_quote_fields_are_consistent(self, env, job):
        state = env.build_state()
        quote = quote_job(job, state, env.estimator, FixedSlaTicket(600.0))
        assert quote.job_id == job.job_id
        assert quote.now == state.now
        assert quote.est_proc_s == env.estimator.est_proc_time(job)
        assert quote.est_completion == min(
            quote.est_ic_completion, quote.est_ec_completion
        )
        assert quote.est_response_s == quote.est_completion - quote.now
        assert quote.slack_s == quote.promise_s - quote.est_response_s
        assert quote.promise_s == 600.0
        assert quote.placement_hint in ("IC", "EC")

    def test_quote_prices_on_estimate_not_ground_truth(self, env):
        """The promise must come off the QRSM estimate, not the hidden truth."""
        job = make_job(proc_time=10_000.0)  # truth wildly above any estimate
        state = env.build_state()
        quote = quote_job(job, state, env.estimator, ProportionalTicket(60.0, 2.0))
        assert quote.promise_s == 60.0 + 2.0 * quote.est_proc_s
        assert quote.promise_s < 60.0 + 2.0 * job.true_proc_time

    def test_no_ticket_means_infinite_promise(self, env, job):
        quote = quote_job(job, env.build_state(), env.estimator, ticket=None)
        assert quote.promise_s == math.inf
        assert quote.slack_s == math.inf


# ----------------------------------------------------------------------
# Admission policy: every branch of the ladder
# ----------------------------------------------------------------------
def _quote_with_slack(env, job, slack: float):
    """A quote whose slack_s is exactly `slack` (fixed promise arithmetic)."""
    base = quote_job(job, env.build_state(), env.estimator, ticket=None)
    import dataclasses

    return dataclasses.replace(
        base, promise_s=base.est_response_s + slack
    )


class TestAdmissionPolicy:
    def test_accept_when_slack_clears_minimum(self, env, job):
        policy = SLAPolicy(min_slack_s=30.0)
        quote = _quote_with_slack(env, job, 30.0)
        result = policy.admit(quote, in_system=0, upload_backlog_mb=0.0)
        assert result.decision == AdmissionDecision.ACCEPT
        assert result.admitted and not result.degraded

    def test_degraded_band(self, env, job):
        policy = SLAPolicy(min_slack_s=30.0, degraded_slack_s=-60.0)
        quote = _quote_with_slack(env, job, -10.0)
        result = policy.admit(quote, in_system=0, upload_backlog_mb=0.0)
        assert result.decision == AdmissionDecision.ACCEPT_DEGRADED
        assert result.admitted and result.degraded
        assert result.reason == "slack"

    def test_reject_on_slack(self, env, job):
        policy = SLAPolicy(min_slack_s=30.0, degraded_slack_s=-60.0)
        quote = _quote_with_slack(env, job, -120.0)
        result = policy.admit(quote, in_system=0, upload_backlog_mb=0.0)
        assert result.decision == AdmissionDecision.REJECT
        assert result.reason == "slack"

    def test_reject_on_in_system_backpressure(self, env, job):
        policy = SLAPolicy(max_in_system=5)
        quote = _quote_with_slack(env, job, 1e9)  # slack is irrelevant here
        result = policy.admit(quote, in_system=5, upload_backlog_mb=0.0)
        assert result.decision == AdmissionDecision.REJECT
        assert result.reason == "in_system"

    def test_reject_on_upload_backlog_backpressure(self, env, job):
        policy = SLAPolicy(max_upload_backlog_mb=500.0)
        quote = _quote_with_slack(env, job, 1e9)
        result = policy.admit(quote, in_system=0, upload_backlog_mb=500.0)
        assert result.decision == AdmissionDecision.REJECT
        assert result.reason == "upload_backlog"

    def test_accept_all_accepts_hopeless_quotes(self, env, job):
        policy = SLAPolicy.accept_all()
        quote = _quote_with_slack(env, job, -1e12)
        assert policy.admit(quote, 10_000, 1e9).admitted

    def test_validation(self):
        with pytest.raises(ValueError):
            SLAPolicy(min_slack_s=0.0, degraded_slack_s=10.0)
        with pytest.raises(ValueError):
            SLAPolicy(max_in_system=0)
        with pytest.raises(ValueError):
            SLAPolicy(max_upload_backlog_mb=-1.0)


# ----------------------------------------------------------------------
# Broker behaviour
# ----------------------------------------------------------------------
class TestBroker:
    def test_admitted_jobs_get_promises_stamped(self, env):
        policy = SLAPolicy(ticket=FixedSlaTicket(100_000.0))
        broker = BurstBroker(env, make_scheduler("Greedy", env), policy=policy)
        outcomes = broker.submit([make_job(job_id=1), make_job(job_id=2)],
                                 arrival_time=0.0)
        assert all(o.admitted for o in outcomes)
        trace = broker.finish()
        assert len(trace.records) == 2
        assert all(r.promise_s == 100_000.0 for r in trace.records)

    def test_rejected_jobs_never_enter_the_system(self, env):
        policy = SLAPolicy(ticket=FixedSlaTicket(100_000.0), max_in_system=2)
        broker = BurstBroker(env, make_scheduler("Greedy", env), policy=policy)
        jobs = [make_job(job_id=i) for i in range(1, 6)]
        outcomes = broker.submit(jobs, arrival_time=0.0)
        decisions = [o.result.decision for o in outcomes]
        assert decisions == ["accept", "accept", "reject", "reject", "reject"]
        assert all(
            o.result.reason == "in_system" for o in outcomes if not o.admitted
        )
        trace = broker.finish()
        assert sorted(r.job_id for r in trace.records) == [1, 2]

    def test_backpressure_bounds_in_flight_work_under_overload(self, env):
        """Open-loop overload: in-system never exceeds the configured cap."""
        policy = SLAPolicy(ticket=FixedSlaTicket(100_000.0), max_in_system=4)
        broker = BurstBroker(env, make_scheduler("Op", env), policy=policy)
        high_water = 0
        for i in range(40):
            broker.submit([make_job(job_id=i + 1)], arrival_time=float(i))
            high_water = max(high_water, env.jobs_in_system)
        assert high_water <= 4
        assert broker.stats.rejected > 0
        assert broker.stats.rejections_by_reason.get("in_system", 0) > 0
        trace = broker.finish()
        assert len(trace.records) == broker.stats.admitted

    def test_degraded_outcome_flags_the_quote(self, env):
        policy = SLAPolicy(
            ticket=FixedSlaTicket(1.0),  # promise nobody can meet
            min_slack_s=0.0,
            degraded_slack_s=-math.inf,
        )
        broker = BurstBroker(env, make_scheduler("Greedy", env), policy=policy)
        (outcome,) = broker.submit([make_job()], arrival_time=0.0)
        assert outcome.result.degraded
        assert outcome.quote.degraded

    def test_submissions_must_be_time_ordered(self, env):
        broker = BurstBroker(env, make_scheduler("Greedy", env))
        broker.submit([make_job(job_id=1)], arrival_time=100.0)
        with pytest.raises(ValueError):
            broker.submit([make_job(job_id=2)], arrival_time=50.0)

    def test_finished_session_rejects_further_use(self, env):
        broker = BurstBroker(env, make_scheduler("Greedy", env))
        broker.submit([make_job()], arrival_time=0.0)
        broker.finish()
        with pytest.raises(RuntimeError):
            broker.submit([make_job(job_id=2)])
        with pytest.raises(RuntimeError):
            broker.finish()

    def test_trace_carries_admission_metadata(self, env):
        policy = SLAPolicy(ticket=FixedSlaTicket(100_000.0), max_in_system=1)
        broker = BurstBroker(env, make_scheduler("Greedy", env), policy=policy)
        broker.submit([make_job(job_id=i) for i in (1, 2, 3)], arrival_time=0.0)
        trace = broker.finish()
        admission = trace.metadata["admission"]
        assert admission["submitted"] == 3
        assert admission["accepted"] == 1
        assert admission["rejected"] == 2
        assert admission["rejections_by_reason"] == {"in_system": 2}


# ----------------------------------------------------------------------
# Offline/online equivalence — the correctness anchor
# ----------------------------------------------------------------------
class TestOfflineOnlineEquivalence:
    @pytest.mark.parametrize("scheduler_name", PAPER_SCHEDULERS)
    def test_broker_replay_is_trace_identical(self, scheduler_name):
        spec = ExperimentSpec(bucket=Bucket.UNIFORM, n_batches=4)
        batches = build_workload(spec)
        offline = run_one(scheduler_name, spec, batches=batches)
        online = run_one_online(scheduler_name, spec, batches=batches)
        assert len(offline.records) == len(online.records)
        for off, on in zip(offline.records, online.records):
            assert asdict(off) == asdict(on)
        assert offline.end_time == online.end_time
        assert offline.arrival_time == online.arrival_time
        assert offline.ic_busy_time == online.ic_busy_time
        assert offline.ec_busy_time == online.ec_busy_time


# ----------------------------------------------------------------------
# Streaming metrics
# ----------------------------------------------------------------------
class TestStreamingStats:
    def test_reservoir_keeps_everything_under_capacity(self):
        r = ReservoirSampler(capacity=100, seed=1)
        for v in range(50):
            r.add(float(v))
        assert sorted(r.values) == [float(v) for v in range(50)]
        assert r.percentile(50) == 24.5

    def test_reservoir_is_bounded_and_deterministic(self):
        a = ReservoirSampler(capacity=64, seed=7)
        b = ReservoirSampler(capacity=64, seed=7)
        for v in range(10_000):
            a.add(float(v))
            b.add(float(v))
        assert len(a.values) == 64
        assert a.values == b.values

    def test_empty_reservoir_percentile_is_nan(self):
        assert math.isnan(ReservoirSampler().percentile(50))

    def test_admission_counters(self):
        s = StreamingSLAStats()
        s.on_admission("accept")
        s.on_admission("accept_degraded", "slack")
        s.on_admission("reject", "in_system")
        s.on_admission("reject", "in_system")
        assert s.submitted == 4 and s.admitted == 2
        assert s.rejection_rate == 0.5
        assert s.rejections_by_reason == {"in_system": 2}
        with pytest.raises(ValueError):
            s.on_admission("maybe")

    def test_completion_counters_score_sold_promises(self):
        from repro.sim.tracing import JobRecord

        s = StreamingSLAStats()

        def record(promise, response):
            return JobRecord(
                job_id=1, batch_id=0, arrival_time=0.0, input_mb=1.0,
                output_mb=1.0, true_proc_time=1.0, est_proc_time=1.0,
                completion_time=response, promise_s=promise,
            )

        s.on_complete(record(100.0, 50.0))   # met
        s.on_complete(record(100.0, 150.0))  # violated
        s.on_complete(record(None, 80.0))    # no promise sold: unscored
        assert s.completed == 3
        assert s.sla_met == 1 and s.sla_violated == 1
        assert s.attainment == 0.5
        assert s.mean_response_s == pytest.approx((50 + 150 + 80) / 3)


# ----------------------------------------------------------------------
# Load driver
# ----------------------------------------------------------------------
class TestLoadGen:
    def test_emits_exactly_n_jobs_in_time_order(self):
        config = LoadGenConfig(n_jobs=137, rate_per_s=10.0, seed=3)
        groups = list(generate_arrivals(config))
        assert sum(len(jobs) for _, jobs in groups) == 137
        times = [t for t, _ in groups]
        assert times == sorted(times)
        assert times[0] == 0.0
        ids = [j.job_id for _, jobs in groups for j in jobs]
        assert ids == list(range(1, 138))

    def test_poisson_groups_are_single_jobs(self):
        config = LoadGenConfig(n_jobs=50, process="poisson", seed=4)
        assert all(len(jobs) == 1 for _, jobs in generate_arrivals(config))

    def test_bursty_groups_carry_multiple_jobs(self):
        config = LoadGenConfig(
            n_jobs=200, process="bursty", mean_burst_jobs=8.0, seed=4
        )
        sizes = [len(jobs) for _, jobs in generate_arrivals(config)]
        assert max(sizes) > 1
        assert sum(sizes) == 200

    def test_stream_is_deterministic_per_seed(self):
        config = LoadGenConfig(n_jobs=60, process="bursty", seed=12)
        a = [(t, [j.features.size_mb for j in jobs])
             for t, jobs in generate_arrivals(config)]
        b = [(t, [j.features.size_mb for j in jobs])
             for t, jobs in generate_arrivals(config)]
        assert a == b

    def test_config_validation(self):
        with pytest.raises(ValueError):
            LoadGenConfig(n_jobs=0)
        with pytest.raises(ValueError):
            LoadGenConfig(rate_per_s=0.0)
        with pytest.raises(ValueError):
            LoadGenConfig(process="sawtooth")
        with pytest.raises(ValueError):
            LoadGenConfig(process="bursty", mean_burst_jobs=0.5)

    def test_run_load_end_to_end(self, fast_config):
        env = CloudBurstEnvironment(fast_config)
        config = LoadGenConfig(n_jobs=250, rate_per_s=20.0, seed=6)
        policy = SLAPolicy(
            ticket=ProportionalTicket(base_s=300.0, factor=6.0),
            degraded_slack_s=-120.0,
            max_in_system=20,
        )
        result = run_load(env, make_scheduler("Op", env), policy, config)
        stats = result.stats
        assert result.n_submitted == 250 == stats.submitted
        assert stats.admitted + stats.rejected == 250
        assert stats.completed == stats.admitted  # finish() drains everything
        assert result.jobs_per_s > 0
        assert result.latency_percentile_ms(50) <= result.latency_percentile_ms(99)
        assert result.sim_horizon_s > 0
        assert "throughput" in result.render()
