"""Tests for the whole-program lint pass (``repro.analysis.project``).

Covers the ProjectIndex plumbing (import-graph resolution, cycles,
reachability), the three project rule families (SEED, SHD, UNI002) and
the interplay between per-line suppressions and interprocedural
findings. Everything goes through :func:`lint_project_sources`, the
in-memory twin of what ``repro lint`` does on disk.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis.lint import Violation
from repro.analysis.project import (
    ModuleContext,
    ProjectIndex,
    ProjectRule,
    all_project_rules,
    lint_project_sources,
)
from repro.analysis.rules import PROJECT_RULES
from repro.analysis.rules.units_flow import (
    dimension_of_callable_name,
    dimension_of_name,
    format_dimension,
)


def codes(violations: list[Violation]) -> list[str]:
    return sorted(v.code for v in violations)


def project_lint(sources: dict[str, str]) -> list[Violation]:
    return lint_project_sources(
        {k: textwrap.dedent(v) for k, v in sources.items()}
    )


def build_index(sources: dict[str, str]) -> ProjectIndex:
    contexts = []
    for dotted, source in sources.items():
        is_pkg = dotted.endswith(".__init__")
        module = dotted[: -len(".__init__")] if is_pkg else dotted
        path = module.replace(".", "/") + ("/__init__.py" if is_pkg else ".py")
        import ast

        contexts.append(
            ModuleContext(
                path=path,
                module=module,
                tree=ast.parse(textwrap.dedent(source)),
                source_lines=tuple(textwrap.dedent(source).splitlines()),
            )
        )
    return ProjectIndex.from_contexts(contexts)


# ----------------------------------------------------------------------
# ProjectIndex: import graph, symbols, reachability
# ----------------------------------------------------------------------
class TestProjectIndex:
    def test_symbol_resolution_forms(self):
        index = build_index(
            {
                "repro.sim.a": """
                import numpy as np
                from repro.common import substream_seed as sub
                from . import engine
                """,
                "repro.sim.engine": "x = 1\n",
                "repro.common": "def substream_seed(*a): ...\n",
            }
        )
        assert index.resolve("repro.sim.a", "np") == "numpy"
        assert index.resolve("repro.sim.a", "sub") == "repro.common.substream_seed"
        assert index.resolve("repro.sim.a", "engine") == "repro.sim.engine"

    def test_resolve_call_through_attribute_chain(self):
        import ast

        index = build_index(
            {"repro.sim.a": "import numpy as np\nr = np.random.default_rng(1)\n"}
        )
        tree = index.modules["repro.sim.a"].ctx.tree
        call = next(n for n in ast.walk(tree) if isinstance(n, ast.Call))
        assert (
            index.resolve_call("repro.sim.a", call.func)
            == "numpy.random.default_rng"
        )

    def test_reachability_follows_imports(self):
        index = build_index(
            {
                "repro.fleet.api": "from repro.models import helper\n",
                "repro.models.helper": "import repro.common\n",
                "repro.common": "x = 1\n",
                "repro.econ.billing": "y = 2\n",  # not imported by fleet
            }
        )
        reach = index.reachable_from(("repro.fleet",))
        assert "repro.fleet.api" in reach
        assert "repro.models.helper" in reach
        assert "repro.common" in reach
        assert "repro.econ.billing" not in reach

    def test_import_cycle_terminates(self):
        index = build_index(
            {
                "repro.fleet.a": "from repro.fleet import b\n",
                "repro.fleet.b": "from repro.fleet import a\n",
            }
        )
        reach = index.reachable_from(("repro.fleet",))
        assert reach == {"repro.fleet.a", "repro.fleet.b"}

    def test_relative_import_resolution(self):
        index = build_index(
            {
                "repro.fleet.__init__": "",
                "repro.fleet.sub.worker": "from ..api import handle\n",
                "repro.fleet.api": "def handle(): ...\n",
            }
        )
        info = index.modules["repro.fleet.sub.worker"]
        assert "repro.fleet.api" in info.imports
        assert info.symbols["handle"] == "repro.fleet.api.handle"

    def test_function_index_includes_methods(self):
        index = build_index(
            {
                "repro.fleet.api": """
                class Broker:
                    def route(self, key): ...
                def top(): ...
                """
            }
        )
        assert index.function_def("repro.fleet.api.top") is not None
        assert index.function_def("repro.fleet.api.Broker.route") is not None
        assert index.function_def("repro.fleet.api.missing") is None

    def test_all_project_rules_registry_is_validated(self):
        rules = all_project_rules()
        assert {type(r) for r in rules} == set(PROJECT_RULES)
        assert all(r.code for r in rules)

    def test_project_rule_with_undocumented_family_rejected(self, monkeypatch):
        import repro.analysis.rules as rules_mod

        class Rogue(ProjectRule):
            code = "QQQ001"
            name = "rogue"
            description = "family not in RULE_FAMILIES"
            hint = "register the family"

            def check_project(self, index):
                return iter(())

        monkeypatch.setattr(
            rules_mod, "PROJECT_RULES", (*rules_mod.PROJECT_RULES, Rogue)
        )
        with pytest.raises(ValueError, match="catalogue code"):
            all_project_rules()


# ----------------------------------------------------------------------
# SEED001 / SEED002: seed provenance
# ----------------------------------------------------------------------
class TestSeedProvenance:
    def test_flags_seed_from_incidental_state(self):
        violations = project_lint(
            {
                "repro.sim.workload": """
                import numpy as np
                def make(jobs):
                    return np.random.default_rng(len(jobs))
                """
            }
        )
        assert "SEED001" in codes(violations)

    def test_seed_chain_call_is_derived(self):
        violations = project_lint(
            {
                "repro.sim.workload": """
                import numpy as np
                from repro.common import substream_seed
                def make(root_seed):
                    return np.random.default_rng(substream_seed(root_seed, "wl"))
                """,
                "repro.common": "def substream_seed(*path): ...\n",
            }
        )
        assert "SEED001" not in codes(violations)

    def test_config_seed_attribute_is_derived(self):
        violations = project_lint(
            {
                "repro.sim.workload": """
                import random
                def make(config):
                    return random.Random(config.seed + 3)
                """
            }
        )
        assert "SEED001" not in codes(violations)

    def test_draw_from_tracked_generator_is_derived(self):
        violations = project_lint(
            {
                "repro.sim.workload": """
                import random
                def split(rng):
                    return random.Random(rng.integers(2**63))
                """
            }
        )
        assert "SEED001" not in codes(violations)

    def test_interprocedural_derived_helper_passes(self):
        violations = project_lint(
            {
                "repro.fleet.worker": """
                import random
                from repro.fleet.routing import shard_seed
                def make(run_seed, shard):
                    return random.Random(shard_seed(run_seed, shard))
                """,
                "repro.fleet.routing": """
                from repro.common import substream_seed
                def shard_seed(run_seed, shard):
                    return substream_seed(run_seed, "shard", shard)
                """,
                "repro.common": "def substream_seed(*path): ...\n",
            }
        )
        assert "SEED001" not in codes(violations)

    def test_interprocedural_underived_helper_is_flagged(self):
        violations = project_lint(
            {
                "repro.fleet.worker": """
                import random
                from repro.fleet.routing import pick
                def make(jobs):
                    return random.Random(pick(jobs))
                """,
                "repro.fleet.routing": """
                def pick(jobs):
                    return len(jobs)
                """,
            }
        )
        assert "SEED001" in codes(violations)

    def test_unseeded_rng_is_not_seed001s_finding(self):
        violations = project_lint(
            {
                "repro.sim.workload": """
                import numpy as np
                def make():
                    return np.random.default_rng()
                """
            }
        )
        # DET002 owns unseeded; SEED001 stays quiet.
        assert "SEED001" not in codes(violations)
        assert "DET002" in codes(violations)

    def test_builtin_hash_is_flagged(self):
        violations = project_lint(
            {
                "repro.fleet.routing": """
                def route(key, n):
                    return hash(key) % n
                """
            }
        )
        assert "SEED002" in codes(violations)

    def test_stable_hash_is_fine(self):
        violations = project_lint(
            {
                "repro.fleet.routing": """
                from repro.common import stable_hash
                def route(key, n):
                    return stable_hash(key) % n
                """,
                "repro.common": "def stable_hash(text): ...\n",
            }
        )
        assert "SEED002" not in codes(violations)

    def test_outside_seed_roots_is_ignored(self):
        violations = project_lint(
            {
                "repro.experiments.plots": """
                import numpy as np
                def jitter(points):
                    return np.random.default_rng(len(points))
                """
            }
        )
        assert "SEED001" not in codes(violations)


# ----------------------------------------------------------------------
# SHD001/002/003: shard safety
# ----------------------------------------------------------------------
class TestShardSafety:
    def test_written_module_registry_in_reachable_module_is_flagged(self):
        violations = project_lint(
            {
                "repro.fleet.api": "from repro.models import helper\n",
                "repro.models.helper": """
                _cache = {}
                def get(k):
                    if k not in _cache:
                        _cache[k] = k * 2
                    return _cache[k]
                """,
            }
        )
        assert "SHD001" in codes(violations)

    def test_upper_case_never_written_constant_passes(self):
        violations = project_lint(
            {
                "repro.fleet.api": """
                TIERS = {"gold": 1.0, "silver": 0.5}
                def weight(tier):
                    return TIERS[tier]
                """
            }
        )
        assert "SHD001" not in codes(violations)

    def test_unreachable_module_is_not_flagged(self):
        violations = project_lint(
            {
                "repro.fleet.api": "x = 1\n",
                "repro.experiments.cache": """
                _memo = {}
                def f(k):
                    _memo[k] = k
                """,
            }
        )
        assert "SHD001" not in codes(violations)

    def test_import_time_lock_is_flagged(self):
        violations = project_lint(
            {
                "repro.fleet.api": """
                import threading
                _LOCK = threading.Lock()
                """
            }
        )
        assert "SHD002" in codes(violations)

    def test_lock_inside_function_is_fine(self):
        violations = project_lint(
            {
                "repro.fleet.api": """
                import threading
                def start():
                    return threading.Lock()
                """
            }
        )
        assert "SHD002" not in codes(violations)

    def test_loop_lambda_capture_is_flagged(self):
        violations = project_lint(
            {
                "repro.fleet.api": """
                def wire(shards):
                    handlers = []
                    for shard in shards:
                        handlers.append(lambda req: shard.handle(req))
                    return handlers
                """
            }
        )
        assert "SHD003" in codes(violations)

    def test_default_arg_binding_is_fine(self):
        violations = project_lint(
            {
                "repro.fleet.api": """
                def wire(shards):
                    handlers = []
                    for shard in shards:
                        handlers.append(lambda req, shard=shard: shard.handle(req))
                    return handlers
                """
            }
        )
        assert "SHD003" not in codes(violations)

    def test_capture_outside_fleet_is_not_flagged(self):
        violations = project_lint(
            {
                "repro.experiments.plots": """
                def wire(axes):
                    cbs = []
                    for ax in axes:
                        cbs.append(lambda ev: ax.draw(ev))
                    return cbs
                """
            }
        )
        assert "SHD003" not in codes(violations)


# ----------------------------------------------------------------------
# UNI002: unit-dimension flow
# ----------------------------------------------------------------------
class TestUnitFlow:
    def test_name_dimension_conventions(self):
        assert format_dimension(dimension_of_name("delay_s")) == "time"
        assert format_dimension(dimension_of_name("cost_usd")) == "money"
        assert format_dimension(dimension_of_name("bandwidth_mbps")) == "data/time"
        assert format_dimension(dimension_of_name("usd_per_hour")) == "money/time"
        assert format_dimension(dimension_of_name("n_jobs")) == "count"
        assert format_dimension(dimension_of_name("utilization")) == "1"
        assert dimension_of_name("counter") is None

    def test_value_at_time_callable_declares_nothing(self):
        # submitted_at is an instant *variable*; price_at is an accessor
        # returning the price AT a time — the callable form is exempt.
        assert format_dimension(dimension_of_name("submitted_at")) == "time"
        assert dimension_of_callable_name("price_at") is None
        assert format_dimension(dimension_of_callable_name("delay_s")) == "time"

    def test_mixed_addition_is_flagged(self):
        violations = project_lint(
            {
                "repro.econ.snippet": """
                def total(cost_usd, delay_s):
                    return cost_usd + delay_s
                """
            }
        )
        assert "UNI002" in codes(violations)

    def test_constant_scalar_keeps_dimension(self):
        violations = project_lint(
            {
                "repro.econ.snippet": """
                def double(cost_usd, other_usd):
                    return 2 * cost_usd + other_usd
                """
            }
        )
        assert "UNI002" not in codes(violations)

    def test_unknown_name_poisons_product(self):
        # up_rate carries data/time invisibly; the division must become
        # unknown, not data — so adding it to an instant stays silent.
        violations = project_lint(
            {
                "repro.core.snippet": """
                def eta(now, backlog_mb, up_rate):
                    return now + backlog_mb / up_rate
                """
            }
        )
        assert "UNI002" not in codes(violations)

    def test_cross_dimension_assignment_is_flagged(self):
        violations = project_lint(
            {
                "repro.econ.snippet": """
                def store(record):
                    total_s = record.cost_usd
                    return total_s
                """
            }
        )
        assert "UNI002" in codes(violations)

    def test_mixed_comparison_is_flagged(self):
        violations = project_lint(
            {
                "repro.core.snippet": """
                def over(deadline_s, budget_usd):
                    return deadline_s < budget_usd
                """
            }
        )
        assert "UNI002" in codes(violations)

    def test_cross_dimension_return_is_flagged(self):
        violations = project_lint(
            {
                "repro.econ.snippet": """
                def penalty_usd(slack_s):
                    return slack_s
                """
            }
        )
        assert "UNI002" in codes(violations)

    def test_augmented_assignment_mismatch_is_flagged(self):
        violations = project_lint(
            {
                "repro.econ.snippet": """
                def accumulate(ledger, delay_s):
                    ledger.total_usd += delay_s
                """
            }
        )
        assert "UNI002" in codes(violations)

    def test_dimension_propagates_through_locals(self):
        violations = project_lint(
            {
                "repro.econ.snippet": """
                def flow(cost_usd, delay_s):
                    x = cost_usd
                    return x + delay_s
                """
            }
        )
        assert "UNI002" in codes(violations)

    def test_branch_level_mismatch_is_caught(self):
        violations = project_lint(
            {
                "repro.econ.snippet": """
                def flow(flag, cost_usd, delay_s):
                    if flag:
                        y = cost_usd + delay_s
                        return y
                    return 0.0
                """
            }
        )
        assert "UNI002" in codes(violations)

    def test_rate_times_time_is_consistent(self):
        violations = project_lint(
            {
                "repro.econ.snippet": """
                def bill(usd_per_hour, hours):
                    spend_usd = usd_per_hour * hours
                    return spend_usd
                """
            }
        )
        assert "UNI002" not in codes(violations)

    def test_out_of_scope_module_is_skipped(self):
        violations = project_lint(
            {
                "repro.experiments.tables": """
                def cell(cost_usd, delay_s):
                    return cost_usd + delay_s
                """
            }
        )
        assert "UNI002" not in codes(violations)


# ----------------------------------------------------------------------
# Suppressions vs project findings
# ----------------------------------------------------------------------
class TestProjectSuppressions:
    def test_project_finding_is_suppressible_inline(self):
        violations = lint_project_sources(
            {
                "repro.fleet.routing": (
                    "def route(key, n):\n"
                    "    return hash(key) % n  "
                    "# repro: allow[SEED002] route only feeds a local cache\n"
                )
            },
            audit_suppressions=True,
        )
        assert codes(violations) == []

    def test_interprocedural_finding_marks_suppression_used(self):
        # The SEED001 finding fires in the *caller* module; the inline
        # suppression there must count as used even though the evidence
        # (the helper's body) lives in another module.
        violations = lint_project_sources(
            {
                "repro.fleet.worker": (
                    "import random\n"
                    "from repro.fleet.routing import pick\n"
                    "def make(jobs):\n"
                    "    return random.Random(pick(jobs))  "
                    "# repro: allow[SEED001] replay harness reuses job count\n"
                ),
                "repro.fleet.routing": ("def pick(jobs):\n    return len(jobs)\n"),
            },
            audit_suppressions=True,
        )
        assert codes(violations) == []

    def test_unused_suppression_on_project_code_warns(self):
        violations = lint_project_sources(
            {
                "repro.fleet.routing": (
                    "def route(key, n):\n"
                    "    return (key * 31) % n  "
                    "# repro: allow[SEED002] nothing here any more\n"
                )
            },
            audit_suppressions=True,
        )
        assert codes(violations) == ["SUP002"]
