"""SVG plotting tests (structure-level: valid, complete documents)."""

from __future__ import annotations

import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.experiments.svg_plot import (
    PALETTE,
    SvgCanvas,
    bar_chart_svg,
    line_chart_svg,
    save_svg,
)


def parse(svg: str) -> ET.Element:
    return ET.fromstring(svg)


class TestCanvas:
    def test_coordinate_transforms_monotone(self):
        c = SvgCanvas(x_min=0.0, x_max=10.0, y_min=0.0, y_max=100.0)
        assert c.px(0.0) < c.px(5.0) < c.px(10.0)
        # SVG y grows downward: larger data y -> smaller pixel y.
        assert c.py(0.0) > c.py(50.0) > c.py(100.0)

    def test_degenerate_ranges_widened(self):
        c = SvgCanvas(x_min=3.0, x_max=3.0, y_min=7.0, y_max=7.0)
        assert c.x_max > c.x_min and c.y_max > c.y_min

    def test_render_is_valid_xml(self):
        c = SvgCanvas()
        c.axes(title="t")
        c.polyline([0.0, 1.0], [0.0, 1.0], "#000")
        root = parse(c.render())
        assert root.tag.endswith("svg")

    def test_text_is_escaped(self):
        c = SvgCanvas()
        c.text(10, 10, "<&>")
        assert "<&>" not in c.render()
        parse(c.render())  # still valid XML


class TestLineChart:
    def test_all_series_drawn(self):
        svg = line_chart_svg(
            [0, 1, 2], {"a": [1, 2, 3], "b": [3, 2, 1]}, title="T",
            x_label="x", y_label="y",
        )
        root = parse(svg)
        polylines = root.findall(".//{http://www.w3.org/2000/svg}polyline")
        assert len(polylines) >= 2
        texts = [t.text for t in root.iter() if t.tag.endswith("text")]
        assert "T" in texts and "a" in texts and "b" in texts

    def test_nan_points_skipped(self):
        svg = line_chart_svg([0, 1, 2], {"a": [1.0, np.nan, 3.0]})
        root = parse(svg)
        pts = root.findall(".//{http://www.w3.org/2000/svg}polyline")[0].get("points")
        assert len(pts.split()) == 2

    def test_empty_series(self):
        svg = line_chart_svg([], {})
        parse(svg)

    def test_distinct_series_colors(self):
        svg = line_chart_svg([0, 1], {f"s{k}": [k, k + 1] for k in range(4)})
        root = parse(svg)
        colors = {
            p.get("stroke")
            for p in root.findall(".//{http://www.w3.org/2000/svg}polyline")
        }
        assert len(colors) == 4
        assert colors <= set(PALETTE)


class TestBarChart:
    def test_bars_and_labels(self):
        svg = bar_chart_svg(["x", "y", "z"], [1.0, 2.0, 3.0], title="B")
        root = parse(svg)
        rects = root.findall(".//{http://www.w3.org/2000/svg}rect")
        # background + frame + 3 bars
        assert len(rects) >= 5
        texts = [t.text for t in root.iter() if t.tag.endswith("text")]
        assert {"x", "y", "z"} <= set(texts)

    def test_bar_width_scales_with_value(self):
        svg = bar_chart_svg(["small", "big"], [1.0, 4.0])
        root = parse(svg)
        bars = [
            r for r in root.findall(".//{http://www.w3.org/2000/svg}rect")
            if r.get("fill") in PALETTE
        ]
        widths = sorted(float(b.get("width")) for b in bars)
        assert widths[1] == pytest.approx(4 * widths[0], rel=0.01)

    def test_zero_bars(self):
        parse(bar_chart_svg([], []))


class TestSave:
    def test_save_roundtrip(self, tmp_path):
        path = save_svg(line_chart_svg([0, 1], {"a": [0, 1]}), tmp_path / "x.svg")
        assert path.exists()
        parse(path.read_text())
