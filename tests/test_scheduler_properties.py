"""Property-based invariants every scheduler must satisfy."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import Placement
from repro.core.baselines import RandomBurstScheduler, ThresholdScheduler
from repro.core.bandwidth_splitting import SizeIntervalSplittingScheduler
from repro.core.greedy import GreedyScheduler
from repro.core.ic_only import ICOnlyScheduler
from repro.core.multi_ec import MultiECGreedyScheduler, MultiECOrderPreservingScheduler
from repro.core.order_preserving import OrderPreservingScheduler
from repro.core.ticket_aware import TicketAwareScheduler

from tests.conftest import make_job, make_state
from tests.test_schedulers import StubEstimator


def all_schedulers():
    est = StubEstimator()
    return [
        ICOnlyScheduler(est),
        GreedyScheduler(est),
        OrderPreservingScheduler(est),
        SizeIntervalSplittingScheduler(est),
        TicketAwareScheduler(est),
        MultiECGreedyScheduler(est),
        MultiECOrderPreservingScheduler(est),
        RandomBurstScheduler(est, 0.4, seed=3),
        ThresholdScheduler(est),
    ]


def jobs_strategy():
    return st.lists(
        st.tuples(
            st.floats(min_value=1.0, max_value=300.0),    # size
            st.floats(min_value=1.0, max_value=200.0),    # proc time
            st.floats(min_value=0.5, max_value=150.0),    # output
        ),
        min_size=1,
        max_size=15,
    )


def build_jobs(raw):
    return [
        make_job(job_id=i, size_mb=s, proc_time=p, output_mb=o)
        for i, (s, p, o) in enumerate(raw, 1)
    ]


def random_state(data):
    backlog = data.draw(st.floats(min_value=0.0, max_value=2000.0))
    ic_busy = data.draw(st.floats(min_value=0.0, max_value=800.0))
    pend = [100.0 + ic_busy] if ic_busy > 0 else []
    return make_state(
        now=100.0,
        ic_free=[100.0 + ic_busy] * 3,
        ec_free=[100.0, 100.0],
        upload_backlog_mb=backlog,
        pending_completions=pend,
    )


class TestPlanInvariants:
    @given(raw=jobs_strategy(), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_every_job_planned_exactly_once(self, raw, data):
        """Work conservation: each input job appears exactly once (or as a
        complete set of chunks covering its size)."""
        jobs = build_jobs(raw)
        total_mb = sum(j.input_mb for j in jobs)
        for sched in all_schedulers():
            state = random_state(data)
            plan = sched.plan(list(jobs), state)
            planned_ids = sorted({d.job.job_id for d in plan.decisions})
            assert planned_ids == sorted(j.job_id for j in jobs)
            planned_mb = sum(d.job.input_mb for d in plan.decisions)
            assert planned_mb == pytest.approx(total_mb, rel=0.06)
            keys = [d.job.key for d in plan.decisions]
            assert len(set(keys)) == len(keys)
            assert keys == sorted(keys)  # queue order preserved

    @given(raw=jobs_strategy(), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_decisions_have_sane_estimates(self, raw, data):
        jobs = build_jobs(raw)
        for sched in all_schedulers():
            state = random_state(data)
            now = state.now
            plan = sched.plan(list(jobs), state)
            for d in plan.decisions:
                assert d.placement in (Placement.IC, Placement.EC)
                assert d.est_proc_time > 0
                assert d.est_completion >= now
                assert d.d in (0, 1)
                assert d.ec_site == 0  # no extra sites configured here

    @given(raw=jobs_strategy())
    @settings(max_examples=30, deadline=None)
    def test_planning_is_deterministic(self, raw):
        """Same jobs + equivalent states -> identical plans."""
        jobs = build_jobs(raw)
        for sched_a, sched_b in zip(all_schedulers(), all_schedulers()):
            s1 = make_state(ic_free=[50.0] * 3, pending_completions=[50.0])
            s2 = s1.clone()
            p1 = sched_a.plan(list(jobs), s1)
            p2 = sched_b.plan(list(jobs), s2)
            assert [d.placement for d in p1.decisions] == [
                d.placement for d in p2.decisions
            ]
            assert [d.est_completion for d in p1.decisions] == [
                d.est_completion for d in p2.decisions
            ]

    @given(raw=jobs_strategy(), data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_commits_reflected_in_state(self, raw, data):
        """After planning, the state's EC backlog equals the bursted MB."""
        jobs = build_jobs(raw)
        for sched in all_schedulers():
            state = random_state(data)
            before = state.upload_backlog_mb
            plan = sched.plan(list(jobs), state)
            bursted_mb = sum(
                d.job.input_mb for d in plan.decisions if d.placement == Placement.EC
            )
            assert state.upload_backlog_mb == pytest.approx(before + bursted_mb)
