"""Fault injection and design-space sweep tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.config import ExperimentSpec
from repro.experiments.runner import build_workload, run_one
from repro.experiments.sweeps import arrival_rate_sweep, bandwidth_sweep, tolerance_sweep
from repro.models.bandwidth import DiurnalBandwidthProfile
from repro.sim.engine import Simulator
from repro.sim.environment import SystemConfig
from repro.sim.faults import OutageInjector, OutageWindow, random_outage_schedule
from repro.sim.network import CapacityProcess, FluidLink
from repro.workload.distributions import Bucket

FAST = ExperimentSpec(
    bucket=Bucket.LARGE, n_batches=2, mean_jobs_per_batch=8,
    system=SystemConfig(ic_machines=4, ec_machines=2, seed=81),
)


def flat_capacity(sim, mbps=4.0, variation=0.0):
    profile = DiurnalBandwidthProfile(
        base_mbps=mbps, daily_amplitude=0.0, half_daily_amplitude=0.0
    )
    return CapacityProcess(sim, profile, np.random.default_rng(0), variation=variation)


class TestOutageWindow:
    def test_validation(self):
        with pytest.raises(ValueError):
            OutageWindow(start_s=-1.0, duration_s=10.0)
        with pytest.raises(ValueError):
            OutageWindow(start_s=0.0, duration_s=0.0)
        with pytest.raises(ValueError):
            OutageWindow(start_s=0.0, duration_s=10.0, residual_fraction=0.0)


class TestCapacityOutage:
    def test_begin_outage_pins_capacity(self):
        sim = Simulator()
        cap = flat_capacity(sim, mbps=4.0)
        cap.begin_outage(duration_s=100.0, residual_fraction=0.1)
        assert cap.current_mbps == pytest.approx(0.4)
        # Epoch ticks inside the window keep the pin.
        sim.run(until=50.0)
        assert cap.current_mbps == pytest.approx(0.4)
        # After the window the profile returns.
        sim.run(until=140.0)
        assert cap.current_mbps == pytest.approx(4.0)

    def test_outage_slows_transfer(self):
        sim = Simulator()
        cap = flat_capacity(sim, mbps=4.0)
        link = FluidLink(sim, cap, per_thread_mbps=10.0)
        done = []
        link.start_transfer(40.0, 1, lambda t: done.append(sim.now))
        sim.schedule(5.0, cap.begin_outage, 100.0, 0.05)
        sim.run(until=500.0)
        # 20 MB by t=5; then 0.2 MB/s for 100 s (20 MB more at... 0.2*100=20MB)
        # -> finishes right around the end of the outage window.
        assert done and 100.0 <= done[0] <= 110.0

    def test_invalid_outage_args(self):
        sim = Simulator()
        cap = flat_capacity(sim)
        with pytest.raises(ValueError):
            cap.begin_outage(0.0)
        with pytest.raises(ValueError):
            cap.begin_outage(10.0, residual_fraction=2.0)


class TestOutageInjector:
    def test_windows_fire_in_order(self):
        sim = Simulator()
        cap = flat_capacity(sim, mbps=4.0)
        injector = OutageInjector(
            sim, [cap],
            [OutageWindow(start_s=10.0, duration_s=5.0),
             OutageWindow(start_s=50.0, duration_s=5.0)],
        )
        sim.run(until=100.0)
        assert injector.fired == 2

    def test_environment_survives_outage(self):
        def hook(env):
            OutageInjector(
                env.sim, [env.up_capacity, env.down_capacity],
                [OutageWindow(start_s=60.0, duration_s=120.0)],
            )
        trace = run_one("Op", FAST, env_hook=hook)
        assert all(r.completed for r in trace.records)
        trace.validate()

    def test_random_schedule(self):
        rng = np.random.default_rng(3)
        windows = random_outage_schedule(rng, horizon_s=1000.0, n_outages=4)
        assert len(windows) == 4
        for w in windows:
            assert 60.0 <= w.start_s <= 1000.0
            assert w.duration_s >= 10.0

    def test_random_schedule_validation(self):
        rng = np.random.default_rng(3)
        with pytest.raises(ValueError):
            random_outage_schedule(rng, horizon_s=10.0, earliest_s=60.0)
        with pytest.raises(ValueError):
            random_outage_schedule(rng, horizon_s=1000.0, n_outages=-1)


class TestSweeps:
    def test_bandwidth_sweep_structure(self):
        sweep = bandwidth_sweep(FAST, scales=(0.2, 1.0))
        assert sweep.scales == [0.2, 1.0]
        assert len(sweep.gains_pct) == 2
        assert sweep.burst_ratios[0] <= sweep.burst_ratios[1] + 0.05
        assert "bandwidth sweep" in sweep.render()

    def test_arrival_rate_sweep_structure(self):
        sweep = arrival_rate_sweep(FAST, mean_jobs=(4.0, 12.0))
        assert sweep.mean_jobs == [4.0, 12.0]
        assert sweep.ic_only_utils[0] < sweep.ic_only_utils[1]
        assert "arrival-rate sweep" in sweep.render()

    def test_tolerance_sweep_monotone(self):
        sweep = tolerance_sweep(FAST, tolerances=(0, 2, 8))
        assert sweep.areas == sorted(sweep.areas)
        assert "tolerance sweep" in sweep.render()


# ----------------------------------------------------------------------
# Edge cases: abutting windows, outages over spot preemption, scaling
# ----------------------------------------------------------------------
class TestOutageEdgeCases:
    def test_back_to_back_windows_keep_capacity_pinned(self):
        """A zero-length gap between windows must not let capacity pop up."""
        sim = Simulator()
        cap = flat_capacity(sim, mbps=4.0)
        OutageInjector(
            sim, [cap],
            [OutageWindow(start_s=10.0, duration_s=50.0, residual_fraction=0.1),
             OutageWindow(start_s=60.0, duration_s=50.0, residual_fraction=0.1)],
        )
        for until in (15.0, 59.0, 61.0, 105.0):
            sim.run(until=until)
            assert cap.current_mbps == pytest.approx(0.4), until
        # First epoch after the second window closes: profile returns.
        sim.run(until=150.0)
        assert cap.current_mbps == pytest.approx(4.0)

    def test_outage_overlapping_spot_preemption(self):
        """A link outage and a spot reclaim in force at once stay sound.

        The spot market (bid below the epoch prices' upper range) reclaims
        the EC pool mid-run while a long outage has the links pinned at
        5% capacity; the run must still drain every job and stay
        bit-for-bit deterministic, trace and ledger both.
        """
        from repro.analysis.determinism import hash_trace
        from repro.econ import EconConfig, SpotMarketConfig, attach_econ
        from repro.sim.faults import OutageInjector, OutageWindow

        def run_once():
            captured = {}

            def hook(env):
                captured["runtime"] = attach_econ(
                    env,
                    EconConfig(
                        spot=SpotMarketConfig(
                            bid_usd_per_hour=0.11, variation=0.4
                        )
                    ),
                )
                captured["injector"] = OutageInjector(
                    env.sim, [env.up_capacity, env.down_capacity],
                    [OutageWindow(start_s=60.0, duration_s=540.0)],
                )

            trace = run_one("Op", FAST, env_hook=hook)
            return trace, captured

        trace_a, cap_a = run_once()
        trace_b, cap_b = run_once()
        assert cap_a["runtime"].ledger.preemptions > 0
        assert cap_a["injector"].fired == 1
        assert all(r.completed for r in trace_a.records)
        trace_a.validate()
        assert hash_trace(trace_a) == hash_trace(trace_b)
        assert (cap_a["runtime"].ledger.ledger_hash()
                == cap_b["runtime"].ledger.ledger_hash())

    def test_autoscaler_scale_down_during_spot_suspension(self):
        """Retiring idle machines while the pool is offline must not wedge.

        Suspended (offline) machines are idle, so a sustained reclaim
        looks exactly like the idle pool the scale-down rule targets; the
        retired machines must leave the offline set with them and the
        pool must keep working once the market recovers.
        """
        from repro.econ import (SpotMarketConfig, SpotPreemptionInjector,
                                SpotPriceProcess)
        from repro.sim.autoscale import ECAutoScaler
        from repro.sim.cluster import Cluster

        sim = Simulator()
        cluster = Cluster(sim, "ec", 4)
        process = SpotPriceProcess(
            sim, SpotMarketConfig(variation=0.0, epoch_s=1e9), seed=1
        )
        injector = SpotPreemptionInjector(
            sim, cluster, process, bid_usd_per_hour=0.2
        )
        # scale_up_queue is set out of reach: a scale-up mid-reclaim
        # would rent a fresh, *online* instance and serve the queue —
        # this test pins the scale-down path specifically.
        scaler = ECAutoScaler(
            sim, cluster, min_instances=1, max_instances=4,
            interval_s=10.0, idle_periods_before_down=1,
            scale_up_queue=100,
        )
        sim.run(until=5.0)
        injector._on_price(0.5)  # reclaim: the whole (idle) pool offline
        assert cluster.offline_machines == cluster.n_machines == 4
        sim.run(until=200.0)  # scaler ticks against an all-offline pool
        assert cluster.n_machines == scaler.min_instances
        assert cluster.offline_machines <= cluster.n_machines
        # Work arriving mid-suspension queues; it must not wedge the
        # drained pool once the market recovers.
        done: list = []
        cluster.submit("a", 30.0, lambda it, m: done.append(sim.now))
        sim.run(until=300.0)
        assert done == []  # still suspended, nothing ran
        injector._on_price(0.1)  # market recovers
        sim.run(until=500.0)
        assert len(done) == 1  # the queued job drained on the survivor
