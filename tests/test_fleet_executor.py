"""Fleet executor layer: parity, crash handling, drains, deprecations.

The contracts under test, from ISSUE 8:

* **executor parity** — the in-process and multiprocess executors fold
  the same seeded workload into one byte-identical ``fleet_sha256``;
* **worker loss** — killing a worker mid-run surfaces a deterministic
  "shard lost" error, surviving shards still fold in shard-index order,
  and two runs losing the same shard the same way agree on the digest;
* **graceful drain** — a SIGTERM'd worker finishes its shard and its
  books fold in exactly as if the parent had drained it;
* **strict mode** — ``repro fleet loadgen --strict`` exits nonzero when
  any shard was lost;
* **one-release aliases** — ``Tenant``/``pretrain_samples`` and the
  old error envelope keep working behind ``DeprecationWarning``s, and
  positional config construction fails loudly.
"""

from __future__ import annotations

import os
import signal
import threading
import time
import warnings

import pytest

from repro.fleet import (
    FleetAPIServer,
    FleetClient,
    FleetConfig,
    FleetManager,
    ShardLostError,
    TenantRegistry,
    TenantSpec,
)
from repro.fleet.client import parse_error
from repro.fleet.executor import MultiprocessExecutor
from repro.service.loadgen import LoadGenConfig


def small_registry() -> TenantRegistry:
    # Four tenants that land on both shards of a 2-shard fleet.
    return TenantRegistry(
        [TenantSpec(tenant_id=f"acme-{i:03d}") for i in range(1, 5)]
    )


def small_config(**overrides) -> FleetConfig:
    defaults = dict(n_shards=2, seed=2024, pretrain_jobs=20)
    defaults.update(overrides)
    return FleetConfig(**defaults)


def tenants_by_shard(manager: FleetManager) -> dict[int, str]:
    """One representative tenant per shard index."""
    out: dict[int, str] = {}
    for tenant in manager.registry:
        out.setdefault(manager.shard_index_for(tenant.tenant_id), tenant.tenant_id)
    return out


# ----------------------------------------------------------------------
# Parity
# ----------------------------------------------------------------------
class TestExecutorParity:
    def test_both_executors_produce_one_digest(self):
        from repro.analysis.determinism import check_executor_parity

        result = check_executor_parity(n_shards=2, n_jobs=80, seed=7)
        assert result.identical, result.render()
        assert result.sha_inprocess == result.sha_multiprocess
        assert "OK" in result.render()

    def test_manager_ops_agree_across_executors(self):
        # The command protocol's submit/quote/stats/accounts ops must
        # return the same answers the in-process dispatch does.
        outcomes = {}
        for executor in ("inprocess", "multiprocess"):
            manager = FleetManager(
                small_config(), small_registry(), executor=executor
            )
            tenant_id = tenants_by_shard(manager)[0]
            arrival, submitted = manager.submit_count(tenant_id, 3)
            quote = manager.quote(tenant_id)
            account = manager.account(tenant_id)
            report = manager.finish()
            outcomes[executor] = (
                arrival,
                [(o.job.job_id, o.result.decision) for o in submitted],
                (quote.promise_s, quote.est_completion),
                account.admitted_jobs,
                report.sha256,
            )
        assert outcomes["inprocess"] == outcomes["multiprocess"]

    def test_unknown_executor_name_fails_loudly(self):
        with pytest.raises(ValueError, match="unknown executor"):
            FleetManager(small_config(), small_registry(), executor="threads")

    def test_direct_shard_access_requires_inprocess(self):
        manager = FleetManager(
            small_config(), small_registry(), executor="multiprocess"
        )
        try:
            with pytest.raises(RuntimeError, match="in-process"):
                manager.shards
        finally:
            manager.finish()


# ----------------------------------------------------------------------
# Worker loss
# ----------------------------------------------------------------------
class TestWorkerLoss:
    def kill_worker(self, manager: FleetManager, index: int) -> None:
        executor = manager.executor
        assert isinstance(executor, MultiprocessExecutor)
        process = executor._handles[index].process
        os.kill(process.pid, signal.SIGKILL)
        process.join(timeout=10)

    def one_lossy_run(self) -> "object":
        manager = FleetManager(
            small_config(), small_registry(), executor="multiprocess"
        )
        victims = tenants_by_shard(manager)
        # Both shards do real work first, then shard 0's worker dies.
        manager.submit_count(victims[0], 2)
        manager.submit_count(victims[1], 2)
        self.kill_worker(manager, 0)
        with pytest.raises(ShardLostError, match="shard 0 lost"):
            manager.submit_count(victims[0], 1)
        return manager.finish()

    def test_killed_worker_surfaces_deterministic_loss(self):
        report = self.one_lossy_run()
        assert list(report.lost_shards) == [0]
        cause = report.lost_shards[0]
        # Stable cause string: no pids, ports or timestamps.
        assert cause == "worker process died during 'submit' command"
        # The lost shard holds its index position in the fold; the
        # surviving shard's books still made it in.
        assert report.shard_hashes[0] == f"LOST({cause})"
        assert not report.shard_hashes[1].startswith("LOST")
        assert report.trace.metadata["fleet"]["lost_shards"] == {"0": cause}
        assert "LOST shard 0" in report.render()

    def test_same_loss_reproduces_the_same_digest(self):
        report_a = self.one_lossy_run()
        report_b = self.one_lossy_run()
        assert report_a.sha256 == report_b.sha256
        assert report_a.shard_hashes == report_b.shard_hashes

    def test_lost_shard_digest_differs_from_intact_run(self):
        lossy = self.one_lossy_run()
        manager = FleetManager(
            small_config(), small_registry(), executor="multiprocess"
        )
        victims = tenants_by_shard(manager)
        manager.submit_count(victims[0], 2)
        manager.submit_count(victims[1], 2)
        intact = manager.finish()
        assert not intact.lost_shards
        assert lossy.sha256 != intact.sha256

    def test_every_shard_lost_is_an_error(self):
        manager = FleetManager(
            small_config(), small_registry(), executor="multiprocess"
        )
        victims = tenants_by_shard(manager)
        self.kill_worker(manager, 0)
        self.kill_worker(manager, 1)
        for index in (0, 1):
            with pytest.raises(ShardLostError):
                manager.submit_count(victims[index], 1)
        with pytest.raises(ValueError, match="every shard was lost"):
            manager.finish()

    def test_health_reports_the_dead_worker(self):
        manager = FleetManager(
            small_config(), small_registry(), executor="multiprocess"
        )
        try:
            assert all(h.alive for h in manager.health())
            self.kill_worker(manager, 1)
            health = {h.index: h.alive for h in manager.health()}
            assert health[0] is True
            assert health[1] is False
        finally:
            manager.finish()

    def test_strict_loadgen_exits_nonzero_on_loss(self, monkeypatch, capsys):
        import repro.cli as cli
        import repro.fleet.loadgen as loadgen_mod

        class FakeResult:
            lost_shards = {1: "worker process died during 'load' command"}

            def render(self) -> str:
                return "fake fleet load"

        monkeypatch.setattr(
            loadgen_mod, "run_fleet_load", lambda *a, **kw: FakeResult()
        )
        rc = cli.main(["fleet", "loadgen", "--jobs", "10", "--strict"])
        assert rc == 3
        assert "1 shard(s) lost" in capsys.readouterr().err
        # Without --strict the same loss is reported, not fatal.
        rc = cli.main(["fleet", "loadgen", "--jobs", "10"])
        assert rc == 0


# ----------------------------------------------------------------------
# Graceful drain
# ----------------------------------------------------------------------
class TestGracefulDrain:
    def test_sigterm_worker_drains_and_folds_in(self):
        def one_run(send_term: bool) -> "object":
            manager = FleetManager(
                small_config(), small_registry(), executor="multiprocess"
            )
            victims = tenants_by_shard(manager)
            manager.submit_count(victims[0], 2)
            manager.submit_count(victims[1], 2)
            if send_term:
                executor = manager.executor
                process = executor._handles[0].process
                os.kill(process.pid, signal.SIGTERM)
                process.join(timeout=30)
                assert not process.is_alive()
            return manager.finish()

        terminated = one_run(send_term=True)
        control = one_run(send_term=False)
        # The TERM'd worker finished its shard and pushed its books: no
        # loss, and the digest matches the undisturbed run exactly.
        assert not terminated.lost_shards
        assert terminated.sha256 == control.sha256


# ----------------------------------------------------------------------
# FleetClient round trip
# ----------------------------------------------------------------------
class TestFleetClient:
    def test_round_trip_against_live_server(self):
        manager = FleetManager(small_config(), small_registry())
        server = FleetAPIServer(manager, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            with FleetClient(server.url) as client:
                health = client.health()
                assert health.n_shards == 2
                assert health.executor == "inprocess"
                tenants = client.tenants()
                assert {t.tenant_id for t in tenants} == {
                    t.tenant_id for t in small_registry()
                }
                submitted = client.submit(tenants[0].tenant_id, 2)
                assert len(submitted.outcomes) == 2
                assert submitted.n_admitted <= 2
                quote = client.quote(tenants[0].tenant_id)
                assert quote.est_completion_s > 0
                stats = client.stats()
                assert stats.fleet["submitted"] == 2
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_new_envelope_parses_without_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            err = parse_error(
                404,
                {"error": {"code": "unknown_tenant", "message": "m",
                           "path": "/v1/jobs"}},
            )
        assert err.status == 404
        assert err.code == "unknown_tenant"
        assert err.path == "/v1/jobs"

    def test_old_envelope_parses_with_deprecation_warning(self):
        with pytest.warns(DeprecationWarning, match="pre-v1 error envelope"):
            err = parse_error(
                400,
                {"error": {"type": "schema_violation", "message": "bad",
                           "details": [{"path": "$.n_jobs"}]}},
            )
        assert err.code == "schema_violation"
        assert err.path == "$.n_jobs"

    def test_https_refused(self):
        with pytest.raises(ValueError, match="plain http"):
            FleetClient("https://example.com")


# ----------------------------------------------------------------------
# One-release aliases and loud failures
# ----------------------------------------------------------------------
class TestDeprecationAliases:
    def test_tenant_alias_warns_and_is_tenantspec(self):
        import repro.fleet as fleet
        import repro.fleet.tenants as tenants_mod

        for module in (fleet, tenants_mod):
            with pytest.warns(DeprecationWarning, match="TenantSpec"):
                alias = module.Tenant
            assert alias is TenantSpec

    def test_pretrain_samples_kwarg_warns_and_maps(self):
        with pytest.warns(DeprecationWarning, match="pretrain_jobs"):
            config = FleetConfig(n_shards=2, pretrain_samples=33)
        assert config.pretrain_jobs == 33

    def test_pretrain_samples_property_warns(self):
        config = FleetConfig(n_shards=2, pretrain_jobs=33)
        with pytest.warns(DeprecationWarning, match="pretrain_jobs"):
            assert config.pretrain_samples == 33

    def test_both_pretrain_spellings_is_an_error(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(TypeError, match="both"):
                FleetConfig(pretrain_jobs=10, pretrain_samples=10)

    def test_configs_reject_positional_construction(self):
        from repro.fleet import FleetLoadConfig

        with pytest.raises(TypeError):
            FleetConfig(8)
        with pytest.raises(TypeError):
            LoadGenConfig(100)
        with pytest.raises(TypeError):
            FleetLoadConfig(100)


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
