"""Unit tests for the ``repro lint`` framework and every rule.

Each rule gets (at least) one minimal violating snippet and one
minimal clean counterpart, checked through :func:`lint_source` — the
same path the CLI takes, minus file IO. The final test asserts the
real source tree is clean, which is the acceptance bar for the lint
gate in CI.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.analysis.lint import (
    RULE_CODE_RE,
    LintRule,
    Violation,
    all_rules,
    lint_source,
    module_name_for_path,
    render_report,
    run_lint,
)
from repro.analysis.rules import (
    RULES,
    FloatTimeEqualityRule,
    StateMutationRule,
    UnitsSuffixRule,
    UnseededRandomRule,
    WallClockRule,
)

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


def codes(violations: list[Violation]) -> list[str]:
    return [v.code for v in violations]


def lint(source: str, module: str = "repro.sim.snippet") -> list[Violation]:
    return lint_source(textwrap.dedent(source), module=module)


# ----------------------------------------------------------------------
# Framework plumbing
# ----------------------------------------------------------------------
class TestFramework:
    def test_every_rule_has_identity(self):
        for cls in RULES:
            rule = cls()
            assert RULE_CODE_RE.match(rule.code), rule
            assert rule.name != "unnamed-rule"
            assert rule.description
            assert rule.hint

    @pytest.mark.parametrize(
        "code",
        ["DET001", "FLT001", "UNI001", "MUT999", "SEED001", "SHD003", "SUP001"],
    )
    def test_rule_code_re_accepts_catalogue_codes(self, code):
        assert RULE_CODE_RE.match(code)

    @pytest.mark.parametrize(
        "code",
        [
            "", "XXX000", "DET1", "DET0001", "det001", "DET001x", " DET001",
            "ZZZ001",  # well-formed shape, but no such documented family
        ],
    )
    def test_rule_code_re_rejects_non_catalogue_codes(self, code):
        assert not RULE_CODE_RE.match(code)

    def test_rule_code_re_is_registry_driven(self):
        """Every registered family (and nothing else) is accepted."""
        from repro.analysis.lint import RULE_FAMILIES

        for family in RULE_FAMILIES:
            assert RULE_CODE_RE.match(f"{family}001")

    def test_rule_with_undocumented_family_rejected_at_instantiation(
        self, monkeypatch
    ):
        """A rule whose code uses a family missing from RULE_FAMILIES
        cannot register, even if the code is otherwise well-formed."""
        import repro.analysis.rules as rules_mod

        class Undocumented(LintRule):
            code = "ZZZ001"
            name = "undocumented-family"
            description = "family never added to RULE_FAMILIES"
            hint = "register the family first"

            def check(self, ctx):
                return iter(())

        monkeypatch.setattr(
            rules_mod, "RULES", (*rules_mod.RULES, Undocumented)
        )
        with pytest.raises(ValueError, match="catalogue code"):
            all_rules()

    def test_all_rules_rejects_sentinel_code(self, monkeypatch):
        """A rule that never declared a catalogue code cannot register."""
        import repro.analysis.rules as rules_mod

        class Undeclared(LintRule):
            name = "undeclared"
            description = "left the base-class sentinel in place"
            hint = "declare a catalogue code"

            def check(self, ctx):
                return iter(())

        monkeypatch.setattr(
            rules_mod, "RULES", (*rules_mod.RULES, Undeclared)
        )
        with pytest.raises(ValueError, match="catalogue code"):
            all_rules()

    def test_rule_codes_are_unique(self):
        rule_codes = [cls.code for cls in RULES]
        assert len(set(rule_codes)) == len(rule_codes)

    def test_module_name_for_path(self):
        assert (
            module_name_for_path(Path("src/repro/sim/engine.py"))
            == "repro.sim.engine"
        )
        assert module_name_for_path(Path("src/repro/__init__.py")) == "repro"
        assert module_name_for_path(Path("scratch/foo.py")) == "foo"

    def test_suppression_comment_silences_only_named_code(self):
        src = "import time\nt = time.time()  # repro: allow[DET001] measured wall time\n"
        assert lint(src) == []
        # Wrong code in the comment does not silence it — and the
        # suppression audit reports the comment as bare (SUP001) and
        # silencing nothing (SUP002), both as warnings.
        src_wrong = "import time\nt = time.time()  # repro: allow[FLT001]\n"
        violations = lint(src_wrong)
        assert sorted(codes(violations)) == ["DET001", "SUP001", "SUP002"]
        by_code = {v.code: v for v in violations}
        assert by_code["DET001"].severity == "error"
        assert by_code["SUP001"].severity == "warning"
        assert by_code["SUP002"].severity == "warning"

    def test_justified_suppression_that_silences_nothing_is_unused(self):
        src = "x = 1  # repro: allow[DET001] leftover from a removed clock\n"
        assert codes(lint(src)) == ["SUP002"]

    def test_bare_suppression_that_works_still_warns(self):
        src = "import time\nt = time.time()  # repro: allow[DET001]\n"
        assert codes(lint(src)) == ["SUP001"]

    def test_suppression_accepts_multiple_codes(self):
        src = (
            "import time\n"
            "t = time.time()  # repro: allow[FLT001, DET001] both silenced\n"
        )
        assert lint(src) == []

    def test_render_report_summarises(self):
        violations = lint("import time\nt = time.time()\n")
        report = render_report(violations)
        assert "DET001" in report and "hint:" in report
        assert report.endswith("1 violation(s): DET001 x1")
        assert render_report([]) == "no violations"

    def test_scoped_rule_skips_out_of_scope_modules(self):
        rule = UnitsSuffixRule()
        assert rule.applies_to("repro.sim.engine")
        assert rule.applies_to("repro.core")
        assert not rule.applies_to("repro.experiments.runner")
        assert not rule.applies_to("repro.simulator")  # prefix, not package

    def test_run_lint_over_a_tmp_tree(self, tmp_path):
        bad = tmp_path / "repro" / "sim" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\nt = time.time()\n")
        violations = run_lint([tmp_path])
        assert codes(violations) == ["DET001"]
        assert violations[0].path.endswith("bad.py")


# ----------------------------------------------------------------------
# DET001: no wall-clock reads
# ----------------------------------------------------------------------
class TestWallClockRule:
    @pytest.mark.parametrize(
        "expr",
        [
            "time.time()",
            "time.perf_counter()",
            "time.monotonic_ns()",
            "datetime.datetime.now()",
            "datetime.date.today()",
        ],
    )
    def test_flags_wall_clock_calls(self, expr):
        src = f"import time, datetime\nt = {expr}\n"
        assert codes(lint(src)) == ["DET001"]

    def test_clean_simulation_clock_is_fine(self):
        assert lint("def f(sim):\n    return sim.now\n") == []

    def test_time_module_non_clock_use_is_fine(self):
        assert lint("import time\nx = time.strftime\n") == []


# ----------------------------------------------------------------------
# DET002: no process-global / unseeded randomness
# ----------------------------------------------------------------------
class TestUnseededRandomRule:
    def test_flags_module_level_random(self):
        assert codes(lint("import random\nx = random.random()\n")) == ["DET002"]

    def test_flags_unseeded_random_instance(self):
        assert codes(lint("import random\nrng = random.Random()\n")) == ["DET002"]

    def test_seeded_random_instance_is_fine(self):
        assert lint("import random\nrng = random.Random(42)\n") == []

    def test_flags_numpy_global_random(self):
        assert codes(lint("import numpy as np\nx = np.random.rand(3)\n")) == [
            "DET002"
        ]

    def test_seeded_default_rng_is_fine(self):
        assert lint("import numpy as np\nrng = np.random.default_rng(7)\n") == []


# ----------------------------------------------------------------------
# FLT001: no float equality on simulation times
# ----------------------------------------------------------------------
class TestFloatTimeEqualityRule:
    def test_flags_equality_on_time_names(self):
        src = "def f(now, deadline):\n    return now == deadline\n"
        assert codes(lint(src)) == ["FLT001"]

    def test_flags_inequality_on_attribute_times(self):
        src = "def f(a, b):\n    return a.completion_time != b.exec_start\n"
        assert codes(lint(src)) == ["FLT001"]

    def test_zero_literal_comparison_is_exempt(self):
        assert lint("def f(start_time):\n    return start_time == 0.0\n") == []

    def test_non_time_names_are_fine(self):
        assert lint("def f(count, total):\n    return count == total\n") == []

    def test_ordering_comparisons_are_fine(self):
        assert lint("def f(now, deadline):\n    return now <= deadline\n") == []


# ----------------------------------------------------------------------
# UNI001: units suffix on public dataclass float fields
# ----------------------------------------------------------------------
class TestUnitsSuffixRule:
    def test_flags_unitless_public_float_field(self):
        src = """
        from dataclasses import dataclass

        @dataclass
        class LinkSpec:
            bandwidth: float
        """
        violations = lint(src)
        assert codes(violations) == ["UNI001"]
        assert "bandwidth" in violations[0].message

    def test_suffixed_and_instant_names_are_fine(self):
        src = """
        from dataclasses import dataclass

        @dataclass
        class LinkSpec:
            bandwidth_mbps: float
            latency_s: float
            arrival_time: float
            utilization: float
        """
        assert lint(src) == []

    def test_private_fields_and_classes_are_exempt(self):
        src = """
        from dataclasses import dataclass

        @dataclass
        class _Ledger:
            bandwidth: float

        @dataclass
        class Public:
            _scratch: float = 0.0
        """
        assert lint(src) == []

    def test_out_of_scope_module_is_skipped(self):
        src = """
        from dataclasses import dataclass

        @dataclass
        class FigureSpec:
            bandwidth: float
        """
        assert lint(src, module="repro.experiments.figures") == []

    def test_non_dataclass_is_skipped(self):
        src = """
        class Plain:
            bandwidth: float = 1.0
        """
        assert lint(src) == []

    def test_money_field_without_usd_token_is_flagged(self):
        """A money name with an otherwise-valid unit suffix still needs usd."""
        src = """
        from dataclasses import dataclass

        @dataclass
        class Invoice:
            penalty_s: float
            cost: float
        """
        violations = lint(src, module="repro.econ.snippet")
        assert codes(violations) == ["UNI001", "UNI001"]
        assert all("usd token" in v.message for v in violations)

    def test_money_fields_with_usd_token_pass(self):
        src = """
        from dataclasses import dataclass

        @dataclass
        class Invoice:
            penalty_usd: float
            base_usd_per_hour: float
            cost_usd_per_gb: float
        """
        assert lint(src, module="repro.econ.snippet") == []

    def test_econ_package_is_in_scope(self):
        src = """
        from dataclasses import dataclass

        @dataclass
        class Spec:
            bandwidth: float
        """
        assert codes(lint(src, module="repro.econ.snippet")) == ["UNI001"]


# ----------------------------------------------------------------------
# MUT001: SystemState mutates only inside commit methods
# ----------------------------------------------------------------------
class TestStateMutationRule:
    def test_flags_field_assignment_through_parameter(self):
        src = """
        def plan(state: SystemState) -> None:
            state.upload_backlog_mb = 0.0
        """
        assert codes(lint(src)) == ["MUT001"]

    def test_flags_mutator_call_on_state_field(self):
        src = """
        def plan(state: SystemState) -> None:
            state.pending_completions.append(3.0)
        """
        assert codes(lint(src)) == ["MUT001"]

    def test_commit_methods_of_state_classes_are_sanctioned(self):
        src = """
        class SystemState:
            def commit_ic(self, end: float) -> None:
                self.pending_completions.append(end)
        """
        assert lint(src) == []

    def test_reads_are_fine(self):
        src = """
        def plan(state: SystemState) -> float:
            return state.upload_backlog_mb + min(state.ic_free)
        """
        assert lint(src) == []

    def test_tracks_aliases_through_clone(self):
        src = """
        def plan(state: SystemState) -> None:
            scratch = state.clone()
            scratch.ec_free.append(1.0)
        """
        assert codes(lint(src)) == ["MUT001"]


# ----------------------------------------------------------------------
# Acceptance: the real tree is clean
# ----------------------------------------------------------------------
class TestRealTree:
    def test_source_tree_has_no_violations(self):
        violations = run_lint([SRC])
        assert violations == [], render_report(violations)

    def test_all_rules_instantiates_full_registry(self):
        assert {r.code for r in all_rules()} == {cls.code for cls in RULES}
