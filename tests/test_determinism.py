"""Tests for the determinism harness and the ``repro`` CLI.

The harness's own promise is tested both ways: a seeded double run must
hash identical, and any single-bit perturbation of a trace must change
the hash *and* be located precisely by the first-divergence report.
"""

from __future__ import annotations

import pytest

from repro.analysis.determinism import (
    check_determinism,
    check_scheduler,
    first_divergence,
    hash_trace,
)
from repro.cli import main
from repro.experiments.config import ExperimentSpec
from repro.experiments.runner import run_one

SMALL_SPEC = ExperimentSpec(
    n_batches=2, mean_jobs_per_batch=4.0, training_samples=50
)


@pytest.fixture(scope="module")
def small_trace():
    return run_one("Greedy", SMALL_SPEC)


class TestHashing:
    def test_identical_runs_hash_identical(self, small_trace):
        again = run_one("Greedy", SMALL_SPEC)
        assert hash_trace(small_trace) == hash_trace(again)
        assert first_divergence(small_trace, again) is None

    def test_hash_is_sha256_hex(self, small_trace):
        digest = hash_trace(small_trace)
        assert len(digest) == 64
        int(digest, 16)  # valid hex

    def test_single_timestamp_flip_changes_hash(self, small_trace):
        before = hash_trace(small_trace)
        record = small_trace.records[3]
        original = record.completion_time
        # The smallest representable perturbation must still be caught.
        record.completion_time = original + 1e-9
        try:
            assert hash_trace(small_trace) != before
        finally:
            record.completion_time = original
        assert hash_trace(small_trace) == before

    def test_first_divergence_names_record_and_field(self, small_trace):
        other = run_one("Greedy", SMALL_SPEC)
        other.records[3].completion_time += 1e-9
        div = first_divergence(small_trace, other)
        assert div is not None
        assert div.record_index == 3
        assert div.field == "completion_time"
        assert div.job_key == (
            small_trace.records[3].job_id,
            small_trace.records[3].sub_id,
        )
        assert "record #3" in div.render()

    def test_first_divergence_on_length_mismatch(self, small_trace):
        other = run_one("Greedy", SMALL_SPEC)
        other.records.pop()
        div = first_divergence(small_trace, other)
        assert div is not None
        assert div.field == "len(records)"
        assert div.record_index is None

    def test_first_divergence_on_run_level_field(self, small_trace):
        other = run_one("Greedy", SMALL_SPEC)
        other.ic_busy_time += 1.0
        div = first_divergence(small_trace, other)
        assert div is not None
        assert div.field == "ic_busy_time"
        assert "run-level" in div.render()


class TestHarness:
    def test_check_scheduler_verdict(self):
        result = check_scheduler("Greedy", spec=SMALL_SPEC)
        assert result.deterministic
        assert result.divergence is None
        assert result.n_records > 0
        assert "OK" in result.render()

    def test_check_determinism_covers_requested_schedulers(self):
        results = check_determinism(["ICOnly", "OpSIBS"], spec=SMALL_SPEC)
        assert [r.scheduler for r in results] == ["ICOnly", "OpSIBS"]
        assert all(r.deterministic for r in results)

    def test_invariants_ride_along_by_default(self):
        # The default check runs with the runtime checker installed; a
        # structurally sound scheduler must not trip it.
        result = check_scheduler("Op", spec=SMALL_SPEC, invariants=True)
        assert result.deterministic


class TestCLI:
    def test_lint_clean_file_exits_zero(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("def f(sim):\n    return sim.now\n")
        assert main(["lint", str(clean)]) == 0
        assert "no violations" in capsys.readouterr().out

    def test_lint_violating_file_exits_one(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "sim" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\nt = time.time()\n")
        assert main(["lint", str(tmp_path)]) == 1
        assert "DET001" in capsys.readouterr().out

    def test_lint_missing_path_exits_two(self, tmp_path):
        assert main(["lint", str(tmp_path / "nope")]) == 2

    def test_check_rejects_unknown_scheduler(self):
        assert main(["check", "--scheduler", "NoSuchThing"]) == 2

    def test_typecheck_skips_gracefully_without_mypy(self, capsys):
        rc = main(["typecheck"])
        out = capsys.readouterr().out
        # With mypy absent this skips (rc 0); with mypy present the typed
        # core must actually pass strict mode.
        assert rc == 0
        assert "typecheck" in out or "mypy" in out
