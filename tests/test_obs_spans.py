"""Span recording: deterministic sampling, ring eviction, canonical form.

The recorder's sampling RNG is seeded via ``substream_seed(seed, "obs",
"spans")`` — never the simulation's streams — so the kept-span set is a
pure function of (seed, offer sequence). Two recorders fed the same
offers must agree span-for-span; that property is what lets sampled
tracing coexist with the bit-reproducibility contract.
"""

from __future__ import annotations

import pytest

from repro.obs import SpanRecorder


def offer_stream(rec: SpanRecorder, n: int) -> None:
    for i in range(n):
        rec.record(f"op{i % 3}", float(i), float(i) + 0.5, {"i": i})


class TestSampling:
    def test_same_seed_same_offers_same_spans(self):
        a = SpanRecorder(2024, sample_fraction=0.5)
        b = SpanRecorder(2024, sample_fraction=0.5)
        offer_stream(a, 500)
        offer_stream(b, 500)
        assert a.kept == b.kept
        assert a.spans() == b.spans()
        assert a.as_dicts() == b.as_dicts()

    def test_double_run_summary_identical(self):
        a = SpanRecorder(7, sample_fraction=0.25)
        b = SpanRecorder(7, sample_fraction=0.25)
        offer_stream(a, 1000)
        offer_stream(b, 1000)
        assert a.summary() == b.summary()

    def test_different_seeds_sample_differently(self):
        a = SpanRecorder(1, sample_fraction=0.5)
        b = SpanRecorder(2, sample_fraction=0.5)
        offer_stream(a, 1000)
        offer_stream(b, 1000)
        assert a.spans() != b.spans()

    def test_fraction_one_keeps_everything_without_rng(self):
        rec = SpanRecorder(2024)
        offer_stream(rec, 100)
        assert rec.offered == rec.kept == 100
        # fraction 1.0 must not consume RNG draws: a fresh recorder at
        # fraction 0.5 starts from the same substream state regardless.
        half = SpanRecorder(2024, sample_fraction=0.5)
        offer_stream(half, 100)
        assert 0 < half.kept < 100

    def test_fraction_zero_keeps_nothing(self):
        rec = SpanRecorder(2024, sample_fraction=0.0)
        offer_stream(rec, 50)
        assert rec.offered == 50
        assert rec.kept == 0
        assert len(rec) == 0


class TestRing:
    def test_capacity_evicts_oldest(self):
        rec = SpanRecorder(2024, capacity=8)
        offer_stream(rec, 20)
        assert rec.offered == rec.kept == 20
        assert len(rec) == 8
        spans = rec.spans()
        assert spans[0].start_s == 12.0
        assert spans[-1].start_s == 19.0

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            SpanRecorder(2024, capacity=0)

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            SpanRecorder(2024, sample_fraction=1.5)
        with pytest.raises(ValueError):
            SpanRecorder(2024, sample_fraction=-0.1)


class TestCanonicalForm:
    def test_attrs_sorted_in_span_objects(self):
        rec = SpanRecorder(2024)
        rec.record("x", 1.0, 2.0, {"zeta": 1, "alpha": 2})
        (span,) = rec.spans()
        assert span.attrs == (("alpha", 2), ("zeta", 1))
        assert span.duration_s == 1.0
        assert span.as_dict()["attrs"] == {"alpha": 2, "zeta": 1}

    def test_point_spans_are_zero_length(self):
        rec = SpanRecorder(2024)
        rec.point("decide", 42.0, {"why": "because"})
        (span,) = rec.spans()
        assert span.start_s == span.end_s == 42.0
        assert span.duration_s == 0.0

    def test_summary_counts_by_name(self):
        rec = SpanRecorder(2024, capacity=100)
        offer_stream(rec, 10)
        summary = rec.summary()
        assert summary["offered"] == 10
        assert summary["kept"] == 10
        assert summary["in_ring"] == 10
        assert summary["capacity"] == 100
        assert summary["by_name"] == {"op0": 4, "op1": 3, "op2": 3}
        assert list(summary["by_name"]) == sorted(summary["by_name"])
