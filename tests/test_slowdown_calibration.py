"""Slowdown metrics and regime calibration tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.calibration import (
    CalibrationResult,
    RegimeTarget,
    calibrate,
    measure_regime,
)
from repro.experiments.config import ExperimentSpec
from repro.experiments.runner import build_workload
from repro.metrics.slowdown import slowdown_by_size, slowdown_stats, slowdowns
from repro.sim.environment import SystemConfig
from repro.workload.distributions import Bucket

from tests.test_metrics import make_trace, record


class TestSlowdown:
    def trace(self):
        return make_trace([
            record(1, 20.0, proc=10.0),               # slowdown 2
            record(2, 40.0, proc=10.0),               # slowdown 4
            record(3, 30.0, proc=30.0),               # slowdown 1
        ])

    def test_values_hand_checked(self):
        assert slowdowns(self.trace()).tolist() == [2.0, 4.0, 1.0]

    def test_stats(self):
        s = slowdown_stats(self.trace())
        assert s.mean == pytest.approx(7 / 3)
        assert s.median == 2.0
        assert s.max == 4.0
        assert s.n_jobs == 3
        assert "slowdown" in s.render()

    def test_empty(self):
        s = slowdown_stats([])
        assert s.n_jobs == 0 and s.mean == 0.0

    def test_by_size_classes(self):
        recs = [
            record(1, 20.0, proc=10.0, output_mb=10.0),   # input 20 -> small
            record(2, 40.0, proc=10.0, output_mb=60.0),   # input 120 -> medium
            record(3, 90.0, proc=30.0, output_mb=100.0),  # input 200 -> large
        ]
        by = slowdown_by_size(make_trace(recs), boundaries_mb=(50.0, 150.0))
        assert by["small"].n_jobs == 1
        assert by["medium"].n_jobs == 1
        assert by["large"].n_jobs == 1
        assert by["small"].mean == pytest.approx(2.0)

    def test_invalid_boundaries(self):
        with pytest.raises(ValueError):
            slowdown_by_size(self.trace(), boundaries_mb=(10.0,))


class TestCalibration:
    def setup_method(self):
        self.spec = ExperimentSpec(
            bucket=Bucket.UNIFORM, n_batches=4, system=SystemConfig(seed=3)
        )
        self.batches = build_workload(self.spec)
        self.config = self.spec.system

    def test_measure_regime_positive(self):
        load, tc = measure_regime(self.batches, self.config)
        assert 0.5 < load < 2.0     # default calibration saturates the IC
        assert 0.2 < tc < 3.0

    def test_calibrate_hits_target(self):
        target = RegimeTarget(ic_load=1.3, transfer_compute=0.9)
        result = calibrate(self.batches, self.config, target)
        assert result.achieved_ic_load == pytest.approx(1.3, rel=1e-6)
        assert result.achieved_transfer_compute == pytest.approx(0.9, rel=1e-6)
        assert result.up_base_mbps > 0 and result.down_base_mbps > 0
        assert "calibration" in result.render()

    def test_calibration_is_self_consistent(self):
        """Re-measuring with the solved pipe + scaled workload reproduces
        the target."""
        target = RegimeTarget(ic_load=1.1, transfer_compute=1.2)
        result = calibrate(self.batches, self.config, target)
        new_config = result.apply(self.config)
        # Scale the workload's processing times by the solved factor.
        for b in self.batches:
            for j in b.jobs:
                j.true_proc_time *= result.proc_scale
        load, tc = measure_regime(self.batches, new_config)
        assert load == pytest.approx(1.1, rel=1e-6)
        assert tc == pytest.approx(1.2, rel=1e-6)

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            RegimeTarget(ic_load=0.0)

    def test_empty_workload_rejected(self):
        with pytest.raises(ValueError):
            measure_regime([], self.config)
