"""Run the doctests embedded in module/class docstrings.

The package quickstart (``repro/__init__``) and the engine examples are
living documentation; these tests keep them true.
"""

from __future__ import annotations

import doctest

import pytest

import repro
import repro.sim.engine


@pytest.mark.parametrize("module", [repro, repro.sim.engine])
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
    assert results.attempted > 0  # the docstrings really contain examples
