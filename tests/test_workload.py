"""Workload model tests: documents, buckets, ground truth, generator, traces."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.distributions import (
    SIZE_MAX_MB,
    SIZE_MIN_MB,
    Bucket,
    bucket_distribution,
)
from repro.workload.document import FEATURE_NAMES, DocumentFeatures, Job, JobType, job_size_cv
from repro.workload.generator import Batch, WorkloadConfig, WorkloadGenerator, generate_workload
from repro.workload.processing import GroundTruthProcessingModel
from repro.workload.traces import batches_from_dict, batches_to_dict, load_batches, save_batches

from tests.conftest import make_job


class TestDocumentFeatures:
    def test_vector_matches_feature_names(self, features):
        vec = features.vector()
        assert len(vec) == len(FEATURE_NAMES)
        assert vec[0] == features.size_mb
        assert vec[FEATURE_NAMES.index("images_per_page")] == pytest.approx(
            features.n_images / features.n_pages
        )
        assert vec[FEATURE_NAMES.index("resolution_factor")] == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            DocumentFeatures(0.0, 1, 1, 0.1, 300, 0.5, 0.5, 0.5)
        with pytest.raises(ValueError):
            DocumentFeatures(10.0, 0, 1, 0.1, 300, 0.5, 0.5, 0.5)
        with pytest.raises(ValueError):
            DocumentFeatures(10.0, 1, 1, 0.1, 300, 1.5, 0.5, 0.5)
        with pytest.raises(ValueError):
            DocumentFeatures(10.0, 1, 1, 0.1, -300, 0.5, 0.5, 0.5)

    def test_scaled_preserves_intensive_features(self, features):
        half = features.scaled(0.5)
        assert half.size_mb == pytest.approx(60.0)
        assert half.n_pages == 50
        assert half.resolution_dpi == features.resolution_dpi
        assert half.color_fraction == features.color_fraction
        assert half.job_type == features.job_type

    def test_scaled_invalid_fraction(self, features):
        with pytest.raises(ValueError):
            features.scaled(0.0)
        with pytest.raises(ValueError):
            features.scaled(1.5)

    def test_frozen(self, features):
        with pytest.raises(dataclasses.FrozenInstanceError):
            features.size_mb = 1.0

    def test_job_type_complexity_ordering(self):
        assert JobType.PERSONALIZATION.complexity > JobType.STATEMENT.complexity


class TestJob:
    def test_input_size_is_feature_size(self, job):
        assert job.input_mb == job.features.size_mb

    def test_chunks_partition_work(self, job):
        chunks = job.chunks(4)
        assert len(chunks) == 4
        assert sum(c.input_mb for c in chunks) == pytest.approx(job.input_mb, rel=0.05)
        assert sum(c.output_mb for c in chunks) == pytest.approx(job.output_mb)
        # ~2% split/merge overhead on processing time.
        total = sum(c.true_proc_time for c in chunks)
        assert job.true_proc_time < total < job.true_proc_time * 1.05
        assert [c.sub_id for c in chunks] == [1, 2, 3, 4]
        assert all(c.parent_id == job.job_id for c in chunks)
        assert all(c.job_id == job.job_id for c in chunks)

    def test_chunks_of_one_returns_self(self, job):
        assert job.chunks(1) == [job]

    def test_chunks_invalid(self, job):
        with pytest.raises(ValueError):
            job.chunks(0)

    def test_key_ordering(self):
        a = make_job(job_id=2)
        chunks = a.chunks(2)
        assert make_job(job_id=1).key < chunks[0].key < chunks[1].key < make_job(job_id=3).key

    def test_validation(self, features):
        with pytest.raises(ValueError):
            Job(1, 0, features, true_proc_time=0.0, output_mb=1.0)
        with pytest.raises(ValueError):
            Job(1, 0, features, true_proc_time=1.0, output_mb=-1.0)

    def test_job_size_cv(self):
        jobs = [make_job(job_id=i, size_mb=s) for i, s in enumerate([10, 10, 10], 1)]
        assert job_size_cv(jobs) == 0.0
        assert job_size_cv([]) == 0.0


class TestBuckets:
    @pytest.mark.parametrize("bucket", list(Bucket))
    def test_samples_within_range(self, bucket, rng):
        dist = bucket_distribution(bucket)
        samples = dist.sample(rng, 5000)
        assert samples.min() >= SIZE_MIN_MB
        assert samples.max() <= SIZE_MAX_MB

    def test_bucket_biases(self, rng):
        small = bucket_distribution(Bucket.SMALL).mean(rng)
        uniform = bucket_distribution(Bucket.UNIFORM).mean(rng)
        large = bucket_distribution(Bucket.LARGE).mean(rng)
        assert small < uniform < large
        assert uniform == pytest.approx((SIZE_MIN_MB + SIZE_MAX_MB) / 2, rel=0.05)

    def test_zero_samples(self, rng):
        assert len(bucket_distribution(Bucket.SMALL).sample(rng, 0)) == 0

    def test_negative_count_raises(self, rng):
        with pytest.raises(ValueError):
            bucket_distribution(Bucket.SMALL).sample(rng, -1)


class TestGroundTruth:
    def test_noise_free_is_deterministic(self, noiseless_truth, features, rng):
        t1 = noiseless_truth.sample_time(features, rng)
        t2 = noiseless_truth.sample_time(features, rng)
        assert t1 == t2 == noiseless_truth.mean_time(features)

    def test_time_increases_with_size(self, noiseless_truth, features):
        big = dataclasses.replace(features, size_mb=250.0)
        assert noiseless_truth.mean_time(big) > noiseless_truth.mean_time(features)

    def test_color_increases_time(self, noiseless_truth, features):
        mono = dataclasses.replace(features, color_fraction=0.0)
        colour = dataclasses.replace(features, color_fraction=1.0)
        assert noiseless_truth.mean_time(colour) > noiseless_truth.mean_time(mono)

    def test_noise_is_mean_preserving(self, truth, features, rng):
        times = [truth.sample_time(features, rng) for _ in range(4000)]
        assert np.mean(times) == pytest.approx(truth.mean_time(features), rel=0.03)

    def test_times_positive(self, truth, rng):
        gen = WorkloadGenerator(seed=0)
        for _ in range(200):
            f = gen.sample_features()
            assert truth.sample_time(f, rng) > 0

    def test_output_smaller_than_input_on_average(self, truth, features, rng):
        outs = [truth.output_size_mb(features, rng) for _ in range(500)]
        assert 0 < np.mean(outs) < features.size_mb


class TestGenerator:
    def test_deterministic_given_seed(self):
        cfg = WorkloadConfig(bucket=Bucket.UNIFORM, n_batches=3, seed=9)
        b1 = generate_workload(cfg)
        b2 = generate_workload(cfg)
        assert [j.true_proc_time for b in b1 for j in b] == [
            j.true_proc_time for b in b2 for j in b
        ]

    def test_batch_arrival_schedule(self):
        cfg = WorkloadConfig(n_batches=4, batch_interval_s=180.0, seed=1)
        batches = generate_workload(cfg)
        assert [b.arrival_time for b in batches] == [0.0, 180.0, 360.0, 540.0]

    def test_poisson_batch_sizes(self):
        cfg = WorkloadConfig(n_batches=200, mean_jobs_per_batch=15.0, seed=2)
        batches = generate_workload(cfg)
        sizes = [len(b) for b in batches]
        assert np.mean(sizes) == pytest.approx(15.0, rel=0.1)
        assert min(sizes) >= 1

    def test_job_ids_consecutive_across_batches(self):
        batches = generate_workload(WorkloadConfig(n_batches=3, seed=4))
        ids = [j.job_id for b in batches for j in b]
        assert ids == list(range(1, len(ids) + 1))

    def test_jobs_carry_batch_arrival(self):
        batches = generate_workload(WorkloadConfig(n_batches=2, seed=4))
        for b in batches:
            assert all(j.arrival_time == b.arrival_time for j in b)
            assert all(j.batch_id == b.batch_id for j in b)

    def test_feature_consistency(self, generator):
        for _ in range(100):
            f = generator.sample_features()
            assert SIZE_MIN_MB <= f.size_mb <= SIZE_MAX_MB
            assert f.n_images >= 1
            assert f.mean_image_mb * f.n_images <= f.size_mb * 1.01

    def test_training_set_shapes(self, generator):
        feats, times = generator.sample_training_set(50)
        assert len(feats) == 50 and times.shape == (50,)
        assert np.all(times > 0)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            WorkloadConfig(n_batches=0)
        with pytest.raises(ValueError):
            WorkloadConfig(batch_interval_s=0)
        with pytest.raises(ValueError):
            WorkloadConfig(mean_jobs_per_batch=0)

    def test_total_mb(self):
        batches = generate_workload(WorkloadConfig(n_batches=1, seed=4))
        assert batches[0].total_mb == pytest.approx(
            sum(j.input_mb for j in batches[0].jobs)
        )


class TestTraces:
    def test_roundtrip_json(self, tmp_path, small_workload):
        path = tmp_path / "workload.json"
        save_batches(small_workload, path)
        loaded = load_batches(path)
        assert len(loaded) == len(small_workload)
        for orig, back in zip(small_workload, loaded):
            assert back.batch_id == orig.batch_id
            assert back.arrival_time == orig.arrival_time
            for j1, j2 in zip(orig.jobs, back.jobs):
                assert j1.job_id == j2.job_id
                assert j1.true_proc_time == j2.true_proc_time
                assert j1.features == j2.features

    def test_dict_roundtrip(self, small_workload):
        payload = batches_to_dict(small_workload)
        back = batches_from_dict(payload)
        assert len(back) == len(small_workload)

    def test_unknown_version_rejected(self):
        with pytest.raises(ValueError):
            batches_from_dict({"version": 99, "batches": []})

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_roundtrip_any_seed(self, seed):
        batches = generate_workload(WorkloadConfig(n_batches=1, seed=seed))
        payload = batches_to_dict(batches)
        back = batches_from_dict(payload)
        assert [j.features for b in back for j in b] == [
            j.features for b in batches for j in b
        ]
