"""Ticket-aware scheduler tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common import Placement
from repro.core.order_preserving import OrderPreservingScheduler
from repro.core.ticket_aware import TicketAwareScheduler, TicketQuote
from repro.experiments.config import ExperimentSpec
from repro.experiments.runner import _training_data, build_workload
from repro.metrics.tickets import ProportionalTicket, ticket_report
from repro.sim.environment import CloudBurstEnvironment, SystemConfig
from repro.workload.distributions import Bucket

from tests.conftest import make_job, make_state
from tests.test_schedulers import StubEstimator


class TestTicketQuote:
    def test_deadline_arithmetic(self):
        q = TicketQuote(base_s=100.0, factor=2.0)
        assert q.deadline(now=50.0, est_proc=30.0) == pytest.approx(210.0)

    def test_flat_quote(self):
        q = TicketQuote(base_s=600.0, factor=0.0)
        assert q.deadline(0.0, 1000.0) == 600.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TicketQuote(base_s=-1.0)
        with pytest.raises(ValueError):
            TicketQuote(base_s=0.0, factor=0.0)


class TestGuardLogic:
    def scenario(self):
        """Slack admits the burst, but the EC round trip blows the ticket
        while the IC path makes it comfortably."""
        state = make_state(
            ic_free=[0.0, 0.0], ec_free=[0.0, 0.0],
            # Slow pipe: EC round trip for job 2 = 100/1+30+50/1 = 180s.
            est_up_mbps=1.0, est_down_mbps=1.0, up_threads=4, down_threads=4,
            per_thread_mbps=0.25,
            pending_completions=[500.0],  # huge slack from earlier batches
        )
        jobs = [make_job(job_id=5, size_mb=100.0, proc_time=30.0, output_mb=50.0)]
        return jobs, state

    def test_guard_keeps_makeable_ticket_local(self):
        jobs, state = self.scenario()
        # Deadline = now + 50 + 2*30 = 110 < EC completion 180; IC = 30 <= 110.
        sched = TicketAwareScheduler(
            StubEstimator(), quote=TicketQuote(base_s=50.0, factor=2.0),
            enable_chunking=False,
        )
        plan = sched.plan(jobs, state)
        assert plan.decisions[0].placement == Placement.IC

    def test_plain_op_would_have_bursted(self):
        jobs, state = self.scenario()
        op = OrderPreservingScheduler(StubEstimator(), enable_chunking=False)
        plan = op.plan(jobs, state)
        assert plan.decisions[0].placement == Placement.EC

    def test_doomed_ticket_bursts_freely(self):
        """If the IC cannot make the deadline either, slack rules alone."""
        jobs, state = self.scenario()
        state.ic_free = [400.0, 400.0]  # IC completion 430 > any deadline
        sched = TicketAwareScheduler(
            StubEstimator(), quote=TicketQuote(base_s=50.0, factor=2.0),
            enable_chunking=False,
        )
        plan = sched.plan(jobs, state)
        assert plan.decisions[0].placement == Placement.EC

    def test_generous_quote_reduces_to_op(self):
        jobs, state = self.scenario()
        s2 = state.clone()
        generous = TicketAwareScheduler(
            StubEstimator(), quote=TicketQuote(base_s=10_000.0, factor=0.0),
            enable_chunking=False,
        )
        op = OrderPreservingScheduler(StubEstimator(), enable_chunking=False)
        assert [d.placement for d in generous.plan(jobs, state).decisions] == [
            d.placement for d in op.plan(jobs, s2).decisions
        ]


class TestEndToEnd:
    def test_compliance_not_worse_than_op(self):
        """Under a binding quote, the guard never hurts ticket compliance."""
        spec = ExperimentSpec(
            bucket=Bucket.LARGE, n_batches=4, system=SystemConfig(seed=42)
        )
        quote = TicketQuote(base_s=60.0, factor=1.6)
        policy = ProportionalTicket(base_s=60.0, factor=1.6)
        compliance = {"Op": [], "TicketOp": []}
        for seed in (42, 43, 44):
            sized = spec.with_seed(seed)
            batches = build_workload(sized)
            for name, factory in (
                ("Op", lambda env: OrderPreservingScheduler(env.estimator)),
                ("TicketOp", lambda env: TicketAwareScheduler(env.estimator, quote=quote)),
            ):
                env = CloudBurstEnvironment(sized.system)
                env.pretrain_qrsm(*_training_data(sized))
                trace = env.run(batches, factory(env))
                compliance[name].append(ticket_report(trace, policy).compliance)
        assert np.mean(compliance["TicketOp"]) >= np.mean(compliance["Op"]) - 0.02
