"""Environments are cheap to re-instantiate and share no mutable state.

The fleet design (:mod:`repro.fleet`) leans on both properties: a
:class:`FleetManager` eagerly builds one full
:class:`CloudBurstEnvironment` per shard, and the determinism contract
says nothing a shard computes may depend on any other shard. These tests
pin that — K same-config environments are independent objects, driving
one cannot perturb another, and re-instantiation is fast enough that
"one environment per shard" stays a reasonable architecture.
"""

from __future__ import annotations

import time

from repro.analysis.determinism import hash_trace
from repro.fleet import FleetConfig, TenantSpec
from repro.fleet.sharding import BrokerShard
from repro.sim.environment import CloudBurstEnvironment, SystemConfig


def make_env(seed: int = 7) -> CloudBurstEnvironment:
    return CloudBurstEnvironment(SystemConfig(seed=seed))


class TestNoSharedMutableState:
    def test_instances_own_their_containers(self):
        a, b = make_env(), make_env()
        assert a.completion_observers is not b.completion_observers
        assert a._states is not b._states
        assert a.extra_site_runtimes is not b.extra_site_runtimes
        a.completion_observers.append(lambda record: None)
        assert b.completion_observers == []

    def test_same_seed_instances_are_equal_but_distinct(self):
        a, b = make_env(seed=11), make_env(seed=11)
        assert a.config == b.config
        assert a.sim is not b.sim
        assert a.rng is not b.rng
        assert a.qrsm is not b.qrsm
        # Advancing one RNG leaves the twin untouched.
        first_draw = a.rng.random()
        assert b.rng.random() == first_draw

    def test_pretraining_one_estimator_leaves_the_twin_unfitted(self):
        shard_config = FleetConfig(n_shards=1, pretrain_jobs=40)
        untrained = make_env()
        shard = BrokerShard(
            0, shard_config, [TenantSpec(tenant_id="only")]
        )
        assert shard.env.qrsm.coef_ is not None
        assert untrained.qrsm.coef_ is None


class TestInterleavedShardsStayIndependent:
    """Driving shard X between any two steps of shard Y changes nothing."""

    def drive(self, shard: BrokerShard, groups: int) -> None:
        for _ in range(groups):
            arrival_time, jobs = shard.synthesize_jobs(3)
            shard.submit("only", jobs, arrival_time=arrival_time)

    def test_interleaved_run_hashes_equal_sequential_run(self):
        config = FleetConfig(n_shards=1, seed=2024, pretrain_jobs=40)
        tenants = [TenantSpec(tenant_id="only")]

        solo = BrokerShard(0, config, tenants)
        self.drive(solo, 6)
        solo_hash = hash_trace(solo.finish().trace)

        subject = BrokerShard(0, config, tenants)
        noisy_neighbor = BrokerShard(
            0, FleetConfig(n_shards=1, seed=999, pretrain_jobs=40), tenants
        )
        for _ in range(6):
            self.drive(subject, 1)
            self.drive(noisy_neighbor, 2)
        noisy_neighbor.finish()
        assert hash_trace(subject.finish().trace) == solo_hash


class TestCheapReinstantiation:
    def test_twenty_environments_construct_quickly(self):
        """Construction must stay O(milliseconds); the bound is loose
        enough for a noisy shared container but catches an accidental
        heavyweight (e.g. training or file IO) landing in __init__."""
        t0 = time.perf_counter()
        envs = [make_env(seed=i) for i in range(20)]
        wall = time.perf_counter() - t0
        assert len({id(e.sim) for e in envs}) == 20
        assert wall < 5.0, f"20 environments took {wall:.2f}s to construct"
