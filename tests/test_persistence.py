"""Comparison snapshot persistence and drift-diff tests."""

from __future__ import annotations

import json

import pytest

from repro.experiments.config import ExperimentSpec
from repro.experiments.persistence import (
    diff_comparisons,
    load_comparison,
    save_comparison,
)
from repro.experiments.runner import run_comparison
from repro.metrics.sla import summarize
from repro.sim.environment import SystemConfig
from repro.workload.distributions import Bucket

FAST = ExperimentSpec(
    bucket=Bucket.UNIFORM, n_batches=2, mean_jobs_per_batch=6,
    system=SystemConfig(ic_machines=4, ec_machines=2, seed=15),
)


@pytest.fixture(scope="module")
def traces():
    return run_comparison(FAST, scheduler_names=("ICOnly", "Greedy"))


class TestSaveLoad:
    def test_roundtrip(self, traces, tmp_path):
        directory = save_comparison(tmp_path / "snap", traces, metadata={"note": "x"})
        loaded, manifest = load_comparison(directory)
        assert set(loaded) == {"ICOnly", "Greedy"}
        assert manifest["metadata"] == {"note": "x"}
        for name in loaded:
            assert loaded[name].makespan == pytest.approx(traces[name].makespan)
            assert len(loaded[name].records) == len(traces[name].records)

    def test_summaries_match_metrics(self, traces, tmp_path):
        directory = save_comparison(tmp_path / "snap", traces)
        manifest = json.loads((directory / "manifest.json").read_text())
        for name, row in manifest["summaries"].items():
            s = summarize(traces[name])
            assert row["makespan_s"] == pytest.approx(s.makespan_s)
            assert row["burst_ratio"] == pytest.approx(s.burst_ratio)

    def test_unknown_version_rejected(self, traces, tmp_path):
        directory = save_comparison(tmp_path / "snap", traces)
        manifest = json.loads((directory / "manifest.json").read_text())
        manifest["version"] = 99
        (directory / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ValueError):
            load_comparison(directory)


class TestDiff:
    def test_identical_snapshots_show_no_drift(self, traces, tmp_path):
        a = save_comparison(tmp_path / "a", traces)
        b = save_comparison(tmp_path / "b", traces)
        report = diff_comparisons(a, b)
        assert all(drift == {} for drift in report.values())

    def test_detects_metric_drift(self, traces, tmp_path):
        a = save_comparison(tmp_path / "a", traces)
        b = save_comparison(tmp_path / "b", traces)
        manifest = json.loads((b / "manifest.json").read_text())
        manifest["summaries"]["Greedy"]["makespan_s"] *= 1.2
        (b / "manifest.json").write_text(json.dumps(manifest))
        report = diff_comparisons(a, b)
        assert "makespan_s" in report["Greedy"]
        assert report["Greedy"]["makespan_s"] == pytest.approx(0.2, abs=0.01)
        assert report["ICOnly"] == {}

    def test_detects_missing_scheduler(self, traces, tmp_path):
        a = save_comparison(tmp_path / "a", traces)
        only_one = {"ICOnly": traces["ICOnly"]}
        b = save_comparison(tmp_path / "b", only_one)
        report = diff_comparisons(a, b)
        assert report["Greedy"] == {"missing": 1.0}
