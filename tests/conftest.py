"""Shared fixtures: small deterministic workloads and fast system configs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.base import SystemState
from repro.sim.environment import SystemConfig
from repro.workload.distributions import Bucket
from repro.workload.document import DocumentFeatures, Job, JobType
from repro.workload.generator import WorkloadConfig, WorkloadGenerator
from repro.workload.processing import GroundTruthProcessingModel


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def features() -> DocumentFeatures:
    """A mid-sized colour marketing document."""
    return DocumentFeatures(
        size_mb=120.0,
        n_pages=100,
        n_images=150,
        mean_image_mb=0.5,
        resolution_dpi=600.0,
        color_fraction=0.6,
        text_ratio=0.4,
        coverage=0.7,
        job_type=JobType.MARKETING,
    )


def make_job(
    job_id: int = 1,
    size_mb: float = 100.0,
    proc_time: float = 60.0,
    output_mb: float = 40.0,
    arrival: float = 0.0,
    batch_id: int = 0,
) -> Job:
    """Hand-built job with explicit size/time for scenario tests."""
    feats = DocumentFeatures(
        size_mb=size_mb,
        n_pages=max(1, int(size_mb)),
        n_images=max(1, int(size_mb)),
        mean_image_mb=0.5,
        resolution_dpi=300.0,
        color_fraction=0.5,
        text_ratio=0.5,
        coverage=0.5,
    )
    return Job(
        job_id=job_id,
        batch_id=batch_id,
        features=feats,
        true_proc_time=proc_time,
        output_mb=output_mb,
        arrival_time=arrival,
    )


@pytest.fixture
def job() -> Job:
    return make_job()


def make_state(
    now: float = 0.0,
    ic_free: list[float] | None = None,
    ec_free: list[float] | None = None,
    **kwargs,
) -> SystemState:
    """SystemState with explicit, easily hand-checked numbers."""
    return SystemState(
        now=now,
        ic_free=ic_free if ic_free is not None else [now] * 4,
        ec_free=ec_free if ec_free is not None else [now] * 2,
        est_up_mbps=kwargs.pop("est_up_mbps", 2.0),
        est_down_mbps=kwargs.pop("est_down_mbps", 2.0),
        up_threads=kwargs.pop("up_threads", 4),
        down_threads=kwargs.pop("down_threads", 4),
        per_thread_mbps=kwargs.pop("per_thread_mbps", 0.5),
        **kwargs,
    )


@pytest.fixture
def fast_config() -> SystemConfig:
    """Small, quick testbed for integration tests."""
    return SystemConfig(
        ic_machines=4,
        ec_machines=2,
        bandwidth_variation=0.15,
        probe_interval_s=120.0,
        seed=99,
    )


@pytest.fixture
def small_workload() -> list:
    gen = WorkloadGenerator(bucket=Bucket.UNIFORM, seed=5)
    return gen.generate(
        WorkloadConfig(bucket=Bucket.UNIFORM, n_batches=2, mean_jobs_per_batch=6, seed=5)
    )


@pytest.fixture
def generator() -> WorkloadGenerator:
    return WorkloadGenerator(bucket=Bucket.UNIFORM, seed=3)


@pytest.fixture
def truth() -> GroundTruthProcessingModel:
    return GroundTruthProcessingModel()


@pytest.fixture
def noiseless_truth() -> GroundTruthProcessingModel:
    return GroundTruthProcessingModel(noise_sigma=0.0)
