"""Telemetry is a pure observer: digests must not move when it attaches.

These are the acceptance tests for the observability PR's core contract:
``hash_trace`` over a run with :func:`attach_obs` equals the bare run,
and a fleet run with ``telemetry=True`` produces the same fleet sha256
as ``telemetry=False``. The obs output itself (metric snapshot, spans)
rides in ``trace.metadata`` — which the hash deliberately excludes — and
must be deterministic across repeated runs of the same seed.
"""

from __future__ import annotations

import pytest

from repro.analysis.determinism import ObsParityResult, check_obs_parity, hash_trace
from repro.experiments.runner import make_scheduler
from repro.obs import ObsConfig, ObsRuntime, attach_obs
from repro.sim.environment import CloudBurstEnvironment
from repro.workload.distributions import Bucket
from repro.workload.generator import WorkloadConfig, WorkloadGenerator


def run_trace(config, *, instrument: bool):
    env = CloudBurstEnvironment(config)
    gen = WorkloadGenerator(bucket=Bucket.UNIFORM, seed=11)
    env.pretrain_qrsm(*gen.sample_training_set(150))
    obs = attach_obs(env, ObsConfig()) if instrument else None
    workload = gen.generate(
        WorkloadConfig(bucket=Bucket.UNIFORM, n_batches=4, mean_jobs_per_batch=6, seed=11)
    )
    trace = env.run(workload, make_scheduler("Op", env))
    return trace, obs


class TestTraceParity:
    def test_trace_hash_unchanged_by_instrumentation(self, fast_config):
        bare, _ = run_trace(fast_config, instrument=False)
        instrumented, obs = run_trace(fast_config, instrument=True)
        assert hash_trace(instrumented) == hash_trace(bare)
        assert isinstance(obs, ObsRuntime)

    def test_obs_output_lands_in_metadata_only(self, fast_config):
        bare, _ = run_trace(fast_config, instrument=False)
        instrumented, _ = run_trace(fast_config, instrument=True)
        assert "obs" not in bare.metadata
        meta = instrumented.metadata["obs"]
        assert meta["registry_sha256"]
        assert meta["registry"]["families"]
        assert meta["spans"]["summary"]["kept"] > 0

    def test_obs_metadata_deterministic_across_runs(self, fast_config):
        first, _ = run_trace(fast_config, instrument=True)
        second, _ = run_trace(fast_config, instrument=True)
        assert first.metadata["obs"] == second.metadata["obs"]

    def test_double_attach_raises(self, fast_config):
        env = CloudBurstEnvironment(fast_config)
        attach_obs(env)
        with pytest.raises(RuntimeError, match="already attached"):
            attach_obs(env)


class TestCheckObsParity:
    def test_check_reports_invisible(self):
        result = check_obs_parity(n_shards=2, n_jobs=80)
        assert isinstance(result, ObsParityResult)
        assert result.invisible
        assert result.hash_plain == result.hash_obs
        assert result.fleet_sha_plain == result.fleet_sha_obs
        assert result.n_metric_families >= 10
        assert result.spans_kept > 0
        assert "OK" in result.render()

    def test_render_flags_divergence(self):
        broken = ObsParityResult(
            scheduler="Op",
            hash_plain="aaaa",
            hash_obs="bbbb",
            fleet_sha_plain="cccc",
            fleet_sha_obs="cccc",
            n_records=1,
            n_metric_families=13,
            spans_kept=1,
            registry_sha="dddd",
        )
        assert not broken.invisible
        assert "FAIL" in broken.render()
