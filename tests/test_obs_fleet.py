"""Fleet-plane observability: the scrape endpoint, report rows, piggyback.

Three integration surfaces over small real fleets:

* ``GET /v1/metrics`` speaks valid Prometheus text and
  ``FleetClient.metrics()`` parses it into typed families;
* ``repro fleet report --format json`` emits exactly the tenant rows the
  markdown table renders, plus the obs snapshot stamped with the fleet
  sha;
* the multiprocess executor ships each worker's registry home
  piggybacked on the stats/drain replies, so the folded fleet registry
  matches the in-process run's observer totals.
"""

from __future__ import annotations

import json
import threading
import urllib.request

import pytest

from repro.cli import main as cli_main
from repro.fleet import (
    FleetAPIServer,
    FleetClient,
    FleetConfig,
    FleetLoadConfig,
    FleetManager,
    TenantRegistry,
    TenantSpec,
    run_fleet_load,
)
from repro.obs import validate_exposition


def small_fleet_config(**overrides: object) -> FleetConfig:
    defaults: dict[str, object] = dict(n_shards=2, seed=2024, pretrain_jobs=40)
    defaults.update(overrides)
    return FleetConfig(**defaults)  # type: ignore[arg-type]


def two_tenants() -> TenantRegistry:
    return TenantRegistry(
        [TenantSpec(tenant_id="acme"), TenantSpec(tenant_id="initech")]
    )


@pytest.fixture
def server():
    manager = FleetManager(small_fleet_config(), two_tenants())
    srv = FleetAPIServer(manager, port=0)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    try:
        yield srv
    finally:
        srv.shutdown()
        srv.server_close()
        thread.join(timeout=5)


class TestMetricsEndpoint:
    def test_raw_scrape_is_valid_exposition(self, server):
        with urllib.request.urlopen(server.url + "/v1/metrics", timeout=10) as resp:
            assert resp.status == 200
            assert resp.headers["Content-Type"].startswith("text/plain")
            text = resp.read().decode("utf-8")
        validate_exposition(text)
        assert "# TYPE fleet_shards gauge" in text

    def test_client_metrics_returns_typed_families(self, server):
        with FleetClient(server.url) as client:
            client.submit("acme", 8)
            scrape = client.metrics()
        assert scrape.family("fleet_shards").value() == 2.0
        names = {family.name for family in scrape.families}
        assert "repro_admission_total" in names
        admitted = sum(
            sample.value
            for sample in scrape.family("repro_admission_total").samples
        )
        assert admitted >= 8.0

    def test_metrics_absent_families_raise_keyerror(self, server):
        with FleetClient(server.url) as client:
            scrape = client.metrics()
        with pytest.raises(KeyError):
            scrape.family("no_such_family_total")


class TestReportFormats:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fleet_load(
            small_fleet_config(),
            FleetLoadConfig(n_jobs=120, rate_per_s=50.0, seed=2024),
            registry=two_tenants(),
        )

    def test_json_rows_are_the_markdown_rows(self, result):
        report = result.report
        data = report.as_dict()
        assert data["rows"] == report.tenant_rows()
        markdown = report.render_markdown()
        for row in data["rows"]:
            assert f"| {row['tenant_id']} |" in markdown

    def test_json_obs_snapshot_is_stamped_with_fleet_sha(self, result):
        report = result.report
        snapshot = report.as_dict()["obs"]
        assert snapshot is not None
        assert snapshot["fleet_sha256"] == report.sha256
        assert snapshot["registry_sha256"] == report.obs.snapshot_sha256()
        assert "repro_jobs_completed_total" in snapshot["registry"]["families"]

    def test_cli_report_json_round_trips(self, capsys):
        assert cli_main([
            "fleet", "report", "--shards", "2", "--tenants", "2",
            "--jobs", "60", "--format", "json",
        ]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["n_shards"] == 2
        assert [row["tenant_id"] for row in data["rows"]] == sorted(
            row["tenant_id"] for row in data["rows"]
        )
        assert data["obs"]["fleet_sha256"] == data["fleet_sha256"]

    def test_telemetry_off_leaves_obs_out_but_sha_fixed(self, result):
        dark = run_fleet_load(
            small_fleet_config(telemetry=False),
            FleetLoadConfig(n_jobs=120, rate_per_s=50.0, seed=2024),
            registry=two_tenants(),
        )
        assert dark.report.obs is None
        assert dark.report.as_dict()["obs"] is None
        assert dark.report.sha256 == result.report.sha256


class TestExecutorPiggyback:
    def test_multiprocess_fold_matches_inprocess_observer_totals(self):
        load = FleetLoadConfig(n_jobs=120, rate_per_s=50.0, seed=2024)
        local = run_fleet_load(
            small_fleet_config(), load, registry=two_tenants()
        )
        remote = run_fleet_load(
            small_fleet_config(executor="multiprocess"),
            load,
            registry=two_tenants(),
        )
        assert remote.report.sha256 == local.report.sha256

        def totals(report, name):
            return sum(
                series.value
                for _, series in report.obs.get(name).series_items()
            )

        for family in (
            "repro_jobs_completed_total",
            "repro_admission_total",
            "repro_plan_decisions_total",
        ):
            assert totals(remote.report, family) == totals(local.report, family)

        worker_cmds = remote.report.obs.get("fleet_worker_commands_total")
        assert worker_cmds is not None
        assert sum(s.value for _, s in worker_cmds.series_items()) > 0
        # The in-process executor has no worker plane to report on.
        assert local.report.obs.get("fleet_worker_commands_total") is None
