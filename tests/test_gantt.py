"""Gantt SVG rendering tests."""

from __future__ import annotations

import xml.etree.ElementTree as ET

import pytest

from repro.experiments.config import ExperimentSpec
from repro.experiments.gantt import gantt_svg
from repro.experiments.runner import run_one
from repro.sim.environment import SystemConfig
from repro.sim.tracing import RunTrace
from repro.workload.distributions import Bucket

FAST = ExperimentSpec(
    bucket=Bucket.UNIFORM, n_batches=2, mean_jobs_per_batch=6,
    system=SystemConfig(ic_machines=3, ec_machines=2, seed=19),
)


@pytest.fixture(scope="module")
def trace():
    return run_one("Greedy", FAST)


class TestGantt:
    def test_valid_svg(self, trace):
        root = ET.fromstring(gantt_svg(trace))
        assert root.tag.endswith("svg")

    def test_one_bar_per_exec_interval(self, trace):
        root = ET.fromstring(gantt_svg(trace))
        titles = [t.text for t in root.iter() if t.tag.endswith("title")]
        exec_bars = [t for t in titles if "exec" in t]
        assert len(exec_bars) == len(trace.completed_records)

    def test_transfer_bars_present_when_bursting(self, trace):
        svg = gantt_svg(trace)
        bursted = [r for r in trace.records if r.bursted]
        if not bursted:
            pytest.skip("no bursted jobs at this seed")
        root = ET.fromstring(svg)
        titles = [t.text for t in root.iter() if t.tag.endswith("title")]
        assert any("upload" in t for t in titles)
        assert any("download" in t for t in titles)

    def test_machine_rows_labelled(self, trace):
        root = ET.fromstring(gantt_svg(trace))
        texts = [t.text for t in root.iter() if t.tag.endswith("text")]
        assert any(t and t.startswith("ic-") for t in texts)
        assert "upload" in texts and "download" in texts

    def test_empty_trace(self):
        svg = gantt_svg(RunTrace(scheduler_name="x"))
        assert "empty trace" in svg
        ET.fromstring(svg)

    def test_custom_title(self, trace):
        svg = gantt_svg(trace, title="My run")
        assert "My run" in svg
