"""Fuzzing the transfer pipeline: random enqueues, cancels, bounds changes.

The pipeline is the most state-heavy substrate (queues, in-flight
transfers, rebuilds); these tests drive it with hypothesis-generated
action sequences and assert the conservation invariants that must always
hold: everything enqueued either completes exactly once or was cancelled,
and the pipeline drains to idle.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.bandwidth import DiurnalBandwidthProfile, TimeOfDayBandwidthEstimator
from repro.models.threads import ThreadTuner
from repro.sim.engine import Simulator
from repro.sim.network import CapacityProcess, FluidLink
from repro.sim.pipeline import TransferPipeline


def build(mbps=4.0, variation=0.0, seed=0):
    sim = Simulator()
    profile = DiurnalBandwidthProfile(
        base_mbps=mbps, daily_amplitude=0.0, half_daily_amplitude=0.0
    )
    cap = CapacityProcess(
        sim, profile, np.random.default_rng(seed), variation=variation, epoch_s=7.0
    )
    link = FluidLink(sim, cap, per_thread_mbps=1.0)
    pipe = TransferPipeline(
        sim, link, ThreadTuner(initial_threads=2, max_threads=8),
        TimeOfDayBandwidthEstimator(prior_mbps=mbps), name="upload",
    )
    return sim, pipe


action = st.one_of(
    st.tuples(st.just("enqueue"), st.floats(min_value=0.5, max_value=300.0)),
    st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=50)),
    st.tuples(
        st.just("bounds"),
        st.floats(min_value=1.0, max_value=100.0),
        st.floats(min_value=1.5, max_value=4.0),  # multiplier for m_bound
    ),
    st.tuples(st.just("single"),),
    st.tuples(st.just("advance"), st.floats(min_value=0.1, max_value=60.0)),
)


class TestPipelineFuzz:
    @given(
        actions=st.lists(action, min_size=1, max_size=40),
        variation=st.floats(min_value=0.0, max_value=0.7),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_conservation_under_arbitrary_action_sequences(
        self, actions, variation, seed
    ):
        sim, pipe = build(variation=variation, seed=seed)
        completed: list[int] = []
        enqueued: list[int] = []
        cancelled: set[int] = set()
        payload_counter = 0

        for act in actions:
            kind = act[0]
            if kind == "enqueue":
                pid = payload_counter
                payload_counter += 1
                enqueued.append(pid)
                pipe.enqueue(pid, act[1], on_complete=completed.append)
            elif kind == "cancel":
                if pipe.cancel(act[1]):
                    cancelled.add(act[1])
            elif kind == "bounds":
                s_bound = act[1]
                pipe.set_size_bounds(s_bound, s_bound * act[2])
            elif kind == "single":
                pipe.set_single_queue()
            elif kind == "advance":
                sim.run(until=sim.now + act[1])

        # Drain everything still pending.
        sim.run(until=sim.now + 50_000.0)
        assert pipe.idle
        assert sorted(completed) == sorted(set(enqueued) - cancelled)
        assert len(completed) == len(set(completed))  # exactly-once delivery
        assert pipe.backlog_mb == pytest.approx(0.0, abs=1e-6)

    @given(
        sizes=st.lists(st.floats(min_value=0.5, max_value=300.0),
                       min_size=1, max_size=20),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_split_and_single_queue_deliver_same_bytes(self, sizes, seed):
        results = {}
        for mode in ("single", "split"):
            sim, pipe = build(variation=0.3, seed=seed)
            if mode == "split":
                pipe.set_size_bounds(50.0, 150.0)
            done_mb = []
            for k, s in enumerate(sizes):
                pipe.enqueue(k, s, on_complete=lambda p, s=s: done_mb.append(s))
            sim.run(until=sim.now + 50_000.0)
            results[mode] = sorted(done_mb)
        assert results["single"] == pytest.approx(results["split"])
