"""Cross-checks against slow, obviously-correct reference implementations.

The production code paths are vectorised (OO metric) or algorithmically
clever (water-filling); these tests pit them against naive versions that
transcribe the paper's equations or the textbook definitions literally.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.oo import ordered_data_series
from repro.sim.network import waterfill
from tests.test_metrics import make_trace, record


# ---------------------------------------------------------------------------
# Reference OO metric: a literal transcription of Eqs. 3-6.
# ---------------------------------------------------------------------------
def reference_oo(completions, outputs, tolerance, times):
    """O(T * n^2) literal implementation of the paper's equations."""
    n = len(completions)
    o_series, m_series = [], []
    for s_t in times:
        # Eq. 3: C_t = jobs completed by s_t (ids are 1-based).
        C_t = {i + 1 for i in range(n) if completions[i] <= s_t}
        # Eq. 5: find max i with j_i in C_t and i - t_l <= |J_it|.
        m_t = 0
        for i in range(1, n + 1):
            if i not in C_t:
                continue
            J_it = {x for x in C_t if x <= i}
            if i - tolerance <= len(J_it):
                m_t = max(m_t, i)
        # Eq. 6: sum of output sizes over J_{m_t, t}.
        o_t = sum(outputs[x - 1] for x in C_t if x <= m_t)
        o_series.append(o_t)
        m_series.append(m_t)
    return np.array(o_series), np.array(m_series)


class TestOOAgainstReference:
    @given(
        st.lists(st.floats(min_value=1.0, max_value=500.0), min_size=1, max_size=25),
        st.lists(st.floats(min_value=0.1, max_value=50.0), min_size=1, max_size=25),
        st.integers(min_value=0, max_value=6),
    )
    @settings(max_examples=80, deadline=None)
    def test_vectorised_matches_reference(self, completions, outputs, tol):
        n = min(len(completions), len(outputs))
        completions, outputs = completions[:n], outputs[:n]
        recs = [
            record(i + 1, c, output_mb=o)
            for i, (c, o) in enumerate(zip(completions, outputs))
        ]
        series = ordered_data_series(
            make_trace(recs), tolerance=tol, sampling_interval=50.0,
            start=0.0, end=500.0,
        )
        ref_o, ref_m = reference_oo(completions, outputs, tol, series.times)
        assert np.allclose(series.ordered_mb, ref_o)
        assert np.array_equal(series.max_in_order_id, ref_m)


# ---------------------------------------------------------------------------
# Reference water-filling: bisection on the water level.
# ---------------------------------------------------------------------------
def reference_waterfill(capacity, caps):
    """Find the max-min fair level by bisection on the common rate."""
    caps = np.asarray(caps, dtype=float)
    if len(caps) == 0 or capacity <= 0:
        return np.zeros(len(caps))
    if caps.sum() <= capacity:
        return caps.copy()
    lo, hi = 0.0, capacity
    for _ in range(200):
        level = (lo + hi) / 2
        used = np.minimum(caps, level).sum()
        if used > capacity:
            hi = level
        else:
            lo = level
    return np.minimum(caps, lo)


class TestWaterfillAgainstReference:
    @given(
        st.floats(min_value=0.01, max_value=100.0),
        st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=15),
    )
    @settings(max_examples=150, deadline=None)
    def test_matches_bisection(self, capacity, caps):
        fast = waterfill(capacity, np.array(caps))
        ref = reference_waterfill(capacity, caps)
        assert np.allclose(np.sort(fast), np.sort(ref), atol=1e-6)
        # Per-flow equality too (same ordering, not just same multiset).
        assert np.allclose(fast, ref, atol=1e-6)


# ---------------------------------------------------------------------------
# Reference in-order consumer: simulate it directly.
# ---------------------------------------------------------------------------
class TestInOrderConsumerAgainstSimulation:
    @given(
        st.lists(st.floats(min_value=1.0, max_value=500.0), min_size=2, max_size=30),
    )
    @settings(max_examples=80, deadline=None)
    def test_strict_m_t_equals_consumer_position(self, completions):
        """With tolerance 0, m_t is exactly how far a strict in-order
        consumer has advanced by time t."""
        recs = [record(i + 1, c) for i, c in enumerate(completions)]
        series = ordered_data_series(
            make_trace(recs), tolerance=0, sampling_interval=37.0,
            start=0.0, end=505.0,
        )
        for s_t, m_t in zip(series.times, series.max_in_order_id):
            # The consumer advances while the next job is already done.
            pos = 0
            while pos < len(completions) and completions[pos] <= s_t:
                pos += 1
            assert m_t == pos
