"""Integration tests asserting the paper's qualitative results.

These are the "did we reproduce the evaluation" tests (DESIGN.md Section 4).
Absolute numbers depend on the simulated testbed; what must hold are the
*shapes*: who wins, in which direction, under which workload. Scalars are
averaged over a few seeds to keep the assertions robust to run noise.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.config import DEFAULT_SPEC, HIGH_VARIATION_SPEC
from repro.experiments.runner import run_comparison
from repro.metrics.oo import ordered_data_series
from repro.metrics.sla import summarize
from repro.workload.distributions import Bucket

SEEDS = (42, 43, 44)


def averaged(bucket, names=("ICOnly", "Greedy", "Op", "OpSIBS"), spec=DEFAULT_SPEC):
    """Mean SLA summaries over seeds; also returns per-seed traces."""
    all_traces = []
    sums: dict[str, list] = {n: [] for n in names}
    for seed in SEEDS:
        traces = run_comparison(spec.with_bucket(bucket).with_seed(seed),
                                scheduler_names=names)
        all_traces.append(traces)
        for n in names:
            sums[n].append(summarize(traces[n]))
    mean = {
        n: {
            "makespan": float(np.mean([s.makespan_s for s in group])),
            "speedup": float(np.mean([s.speedup for s in group])),
            "ic_util": float(np.mean([s.ic_util for s in group])),
            "ec_util": float(np.mean([s.ec_util for s in group])),
            "burst": float(np.mean([s.burst_ratio for s in group])),
        }
        for n, group in sums.items()
    }
    return mean, all_traces


@pytest.fixture(scope="module")
def large():
    return averaged(Bucket.LARGE)


@pytest.fixture(scope="module")
def uniform():
    return averaged(Bucket.UNIFORM)


class TestFig6Makespan:
    """Fig. 6: cloud bursting ~10% faster than IC-only; Greedy ~ Op."""

    def test_bursting_beats_ic_only_on_large(self, large):
        mean, _ = large
        for name in ("Greedy", "Op", "OpSIBS"):
            gain = (mean["ICOnly"]["makespan"] - mean[name]["makespan"]) / mean["ICOnly"]["makespan"]
            assert gain > 0.05, f"{name} gained only {gain:.1%}"

    def test_large_gain_near_paper_ten_percent(self, large):
        mean, _ = large
        gain = (mean["ICOnly"]["makespan"] - mean["Op"]["makespan"]) / mean["ICOnly"]["makespan"]
        assert 0.05 < gain < 0.30

    def test_greedy_and_op_makespans_close(self, large):
        mean, _ = large
        ratio = mean["Greedy"]["makespan"] / mean["Op"]["makespan"]
        assert 0.9 < ratio < 1.1

    def test_bursting_helps_uniform_too(self, uniform):
        mean, _ = uniform
        assert mean["Op"]["makespan"] < mean["ICOnly"]["makespan"]


class TestTable1:
    """Table I shapes: utilizations, burst ratios, speedups."""

    def test_op_uses_ec_more_than_greedy_on_uniform(self, uniform):
        mean, _ = uniform
        assert mean["Op"]["ec_util"] > mean["Greedy"]["ec_util"]

    def test_op_bursts_more_than_greedy_on_uniform(self, uniform):
        mean, _ = uniform
        assert mean["Op"]["burst"] > mean["Greedy"]["burst"]

    def test_burst_ratios_in_paper_range(self, large, uniform):
        for mean, _ in (large, uniform):
            for name in ("Greedy", "Op"):
                assert 0.05 < mean[name]["burst"] < 0.40

    def test_speedups_same_order_as_paper(self, large, uniform):
        """Paper: 5.6-6.8x on 8+2 machines; we accept the same order."""
        for mean, _ in (large, uniform):
            for name in ("Greedy", "Op"):
                assert 4.0 < mean[name]["speedup"] < 10.0

    def test_large_speedup_exceeds_uniform(self, large, uniform):
        """Computation dominates communication for large jobs (Sec. V.B.3)."""
        assert large[0]["Op"]["speedup"] > uniform[0]["Op"]["speedup"]

    def test_ic_util_dominates_ec_util(self, large):
        mean, _ = large
        for name in ("Greedy", "Op"):
            assert mean[name]["ic_util"] > mean[name]["ec_util"]


class TestFig9Fig10OO:
    """Op's ordered-data availability dominates Greedy under variation."""

    @pytest.fixture(scope="class")
    def oo_areas(self):
        areas: dict[str, list[float]] = {}
        for seed in SEEDS:
            traces = run_comparison(HIGH_VARIATION_SPEC.with_seed(seed))
            start = min(t.arrival_time for t in traces.values())
            end = max(t.end_time for t in traces.values())
            for name, trace in traces.items():
                s = ordered_data_series(trace, tolerance=4, start=start, end=end)
                areas.setdefault(name, []).append(s.area())
        return {n: float(np.mean(v)) for n, v in areas.items()}

    def test_op_at_least_greedy(self, oo_areas):
        assert oo_areas["Op"] >= oo_areas["Greedy"] * 0.99

    def test_bursting_schedulers_beat_ic_only(self, oo_areas):
        for name in ("Greedy", "Op", "OpSIBS"):
            assert oo_areas[name] > oo_areas["ICOnly"]

    def test_sibs_comparable_to_op(self, oo_areas):
        assert oo_areas["OpSIBS"] >= oo_areas["Op"] * 0.95

    def test_tolerance_increases_availability(self):
        traces = run_comparison(HIGH_VARIATION_SPEC, scheduler_names=("Op",))
        trace = traces["Op"]
        areas = [
            ordered_data_series(trace, tolerance=t).area() for t in (0, 2, 4, 8)
        ]
        assert all(b >= a - 1e-6 for a, b in zip(areas, areas[1:]))


class TestSectionVB4Sibs:
    """SIBS raises EC utilization over plain Op; speedup stays intact."""

    def test_ec_util_and_speedup(self, large):
        mean, _ = large
        assert mean["OpSIBS"]["ec_util"] >= mean["Op"]["ec_util"] * 0.97
        assert mean["OpSIBS"]["speedup"] >= mean["Op"]["speedup"] * 0.95

    def test_cv_of_bursted_sizes_high_without_chunking(self, large):
        """Sec. V.B.4: CoV of bursted sizes ~1 motivates SIBS."""
        _, all_traces = large
        cvs = []
        for traces in all_traces:
            sizes = np.array([
                r.input_mb for r in traces["Greedy"].records if r.bursted
            ])
            if len(sizes) > 1:
                cvs.append(sizes.std() / sizes.mean())
        assert cvs and 0.2 < float(np.mean(cvs)) < 1.5


class TestBurstingMechanics:
    def test_ic_only_never_bursts(self, large):
        mean, _ = large
        assert mean["ICOnly"]["burst"] == 0.0
        assert mean["ICOnly"]["ec_util"] == 0.0

    def test_head_of_queue_stays_local_for_op(self, uniform):
        """Op must not burst the first job of the run (empty system)."""
        _, all_traces = uniform
        for traces in all_traces:
            first = min(traces["Op"].records, key=lambda r: (r.job_id, r.sub_id))
            assert not first.bursted
