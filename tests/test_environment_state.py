"""Hand-checked tests of the environment's SystemState construction.

``build_state`` is the boundary between the hidden ground truth and what
schedulers may see; these tests pin its arithmetic on crafted situations.
"""

from __future__ import annotations

import pytest

from repro.common import Placement
from repro.core.ic_only import ICOnlyScheduler
from repro.sim.environment import CloudBurstEnvironment, SystemConfig
from repro.workload.distributions import Bucket
from repro.workload.generator import Batch, WorkloadGenerator

from tests.conftest import make_job


def fresh_env(**overrides):
    defaults = dict(ic_machines=2, ec_machines=2, seed=17,
                    bandwidth_variation=0.0)
    defaults.update(overrides)
    env = CloudBurstEnvironment(SystemConfig(**defaults))
    gen = WorkloadGenerator(bucket=Bucket.UNIFORM, seed=3)
    env.pretrain_qrsm(*gen.sample_training_set(150))
    return env


class TestInitialState:
    def test_idle_system_state(self):
        env = fresh_env()
        state = env.build_state()
        now = env.sim.now
        assert state.now == now
        assert state.ic_free == [now, now]
        assert state.ec_free == [now, now]
        assert state.upload_backlog_mb == 0.0
        assert state.download_backlog_mb == 0.0
        assert state.pending_completions == []
        assert state.upload_parallelism == 1
        assert state.extra_sites == []

    def test_bandwidth_estimates_use_prior_before_data(self):
        env = fresh_env()
        state = env.build_state()
        assert state.est_up_mbps == pytest.approx(4.0 * 0.8)
        assert state.est_down_mbps == pytest.approx(5.0 * 0.8)

    def test_threads_come_from_tuner(self):
        env = fresh_env(initial_threads=6)
        state = env.build_state()
        assert state.up_threads == 6
        assert state.down_threads == 6


class TestLoadedState:
    def test_ic_backlog_folds_estimates_not_truth(self):
        """Machine availability must reflect QRSM estimates, never the
        hidden true processing times."""
        env = fresh_env()
        # Admit a batch of three jobs onto the 2-machine IC by hand.
        jobs = [make_job(job_id=i, proc_time=50.0) for i in (1, 2, 3)]
        batch = Batch(batch_id=0, arrival_time=0.0, jobs=jobs)
        scheduler = ICOnlyScheduler(env.estimator)
        env._scheduler = scheduler
        from repro.sim.tracing import RunTrace
        env._trace = RunTrace(scheduler_name="t", ic_machines=2, ec_machines=2)
        env._batches_arrived += 1
        env._on_batch_arrival(batch)

        state = env.build_state()
        now = env.sim.now
        est = {key: st.est_proc for key, st in env._states.items()}
        # Jobs 1,2 run; job 3 queued behind the earlier-finishing machine.
        running_frees = sorted([now + est[(1, 0)], now + est[(2, 0)]])
        expected = sorted([running_frees[1], running_frees[0] + est[(3, 0)]])
        assert sorted(state.ic_free) == pytest.approx(expected)
        # All three contribute to the pending pool.
        assert len(state.pending_completions) == 3

    def test_pending_keyed_matches_pending(self):
        env = fresh_env()
        jobs = [make_job(job_id=i, proc_time=30.0) for i in (1, 2)]
        batch = Batch(batch_id=0, arrival_time=0.0, jobs=jobs)
        from repro.sim.tracing import RunTrace
        env._scheduler = ICOnlyScheduler(env.estimator)
        env._trace = RunTrace(scheduler_name="t", ic_machines=2, ec_machines=2)
        env._on_batch_arrival(batch)
        state = env.build_state()
        assert [t for _, t in state.pending_keyed] == state.pending_completions
        assert {k for k, _ in state.pending_keyed} == {(1, 0), (2, 0)}

    def test_running_job_estimate_shrinks_with_elapsed_time(self):
        env = fresh_env()
        jobs = [make_job(job_id=1, proc_time=100.0)]
        from repro.sim.tracing import RunTrace
        env._scheduler = ICOnlyScheduler(env.estimator)
        env._trace = RunTrace(scheduler_name="t", ic_machines=2, ec_machines=2)
        env._on_batch_arrival(Batch(batch_id=0, arrival_time=0.0, jobs=jobs))
        s0 = env.build_state()
        remaining0 = max(s0.ic_free) - env.sim.now
        env.sim.run(until=env.sim.now + 10.0)
        s1 = env.build_state()
        remaining1 = max(s1.ic_free) - env.sim.now
        assert remaining1 == pytest.approx(remaining0 - 10.0, abs=1e-6)

    def test_running_estimate_never_negative(self):
        """A job outliving its estimate leaves free-at = now, not the past."""
        env = fresh_env()
        job = make_job(job_id=1, proc_time=100.0)
        from repro.sim.tracing import RunTrace
        env._scheduler = ICOnlyScheduler(env.estimator)
        env._trace = RunTrace(scheduler_name="t", ic_machines=2, ec_machines=2)
        env._on_batch_arrival(Batch(batch_id=0, arrival_time=0.0, jobs=[job]))
        # Force a tiny estimate so the true runtime overshoots it.
        env._states[(1, 0)].est_proc = 1.0
        env.sim.run(until=env.sim.now + 50.0)
        state = env.build_state()
        assert min(state.ic_free) >= state.now - 1e-9
