"""Tests for the runtime invariant checker.

Two angles: clean end-to-end runs must pass with every counter actually
moving (proof the hooks are wired, not silently dormant), and each
invariant must fire on a manufactured violation. Violations are staged
against small stub objects — the real environment never produces them,
which is rather the point.
"""

from __future__ import annotations

import math
from types import SimpleNamespace

import pytest

from repro.analysis.invariants import (
    EnvironmentInvariants,
    InvariantError,
    install_invariants,
    invariants_enabled,
)
from repro.experiments.config import ExperimentSpec
from repro.experiments.runner import run_one
from repro.metrics.streaming import StreamingSLAStats
from repro.sim.engine import Event
from repro.sim.environment import CloudBurstEnvironment
from repro.sim.pipeline import PipelineItem, SizeQueue
from repro.sim.tracing import JobRecord, RunTrace

#: Two small batches — enough to exercise uploads, bursts and the drain.
SMALL_SPEC = ExperimentSpec(
    n_batches=2, mean_jobs_per_batch=4.0, training_samples=50
)


def _noop() -> None:
    pass


def make_checker(**env_attrs) -> EnvironmentInvariants:
    """Checker bound to a stub environment (no install, direct hook calls)."""
    defaults = dict(
        sim=SimpleNamespace(now=0.0),
        jobs_in_system=0,
        _open={},
        upload=SimpleNamespace(name="upload", backlog_mb=0.0),
        download=SimpleNamespace(name="download", backlog_mb=0.0),
        extra_site_runtimes=[],
    )
    defaults.update(env_attrs)
    return EnvironmentInvariants(SimpleNamespace(**defaults))


def completed_record(**overrides) -> JobRecord:
    fields = dict(
        job_id=1,
        batch_id=0,
        arrival_time=0.0,
        input_mb=1.0,
        output_mb=1.0,
        completion_time=5.0,
    )
    fields.update(overrides)
    return JobRecord(**fields)


# ----------------------------------------------------------------------
# Enablement / wiring
# ----------------------------------------------------------------------
class TestWiring:
    @pytest.mark.parametrize("value,expect", [
        ("1", True), ("yes", True), ("on", True),
        ("0", False), ("false", False), ("no", False), ("", False),
    ])
    def test_env_var_parsing(self, monkeypatch, value, expect):
        monkeypatch.setenv("REPRO_INVARIANTS", value)
        assert invariants_enabled() is expect

    def test_unset_means_disabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_INVARIANTS", raising=False)
        assert not invariants_enabled()

    def test_environment_self_installs_under_env_var(
        self, monkeypatch, fast_config
    ):
        monkeypatch.setenv("REPRO_INVARIANTS", "1")
        env = CloudBurstEnvironment(fast_config)
        assert isinstance(env.invariants, EnvironmentInvariants)
        assert env.sim.on_event is not None
        assert env.upload.on_transfer_start is not None

    def test_environment_stays_unhooked_when_disabled(
        self, monkeypatch, fast_config
    ):
        monkeypatch.setenv("REPRO_INVARIANTS", "0")
        env = CloudBurstEnvironment(fast_config)
        assert env.invariants is None
        assert env.sim.on_event is None

    def test_clean_run_exercises_every_hook(self):
        checkers = []
        trace = run_one(
            "OpSIBS",
            SMALL_SPEC,
            env_hook=lambda env: checkers.append(install_invariants(env)),
        )
        assert len(trace.records) > 0
        (checker,) = checkers
        stats = checker.stats
        assert stats.events_checked > 0
        assert stats.transfers_checked > 0
        assert stats.admissions_seen == len(trace.records)
        assert stats.completions_checked == stats.admissions_seen
        assert stats.finishes_checked == 1
        assert "events" in stats.render()


# ----------------------------------------------------------------------
# Engine invariants
# ----------------------------------------------------------------------
class TestEventOrdering:
    def test_monotone_times_pass(self):
        checker = make_checker()
        checker._on_event(Event(time=1.0, seq=0, callback=_noop))
        checker._on_event(Event(time=1.0, seq=1, callback=_noop))
        checker._on_event(Event(time=2.5, seq=0, callback=_noop))
        assert checker.stats.events_checked == 3

    def test_backwards_time_raises(self):
        checker = make_checker()
        checker._on_event(Event(time=5.0, seq=0, callback=_noop))
        with pytest.raises(InvariantError, match="backwards"):
            checker._on_event(Event(time=4.0, seq=1, callback=_noop))

    def test_fifo_tie_break_violation_raises(self):
        checker = make_checker()
        checker._on_event(Event(time=3.0, seq=7, callback=_noop))
        with pytest.raises(InvariantError, match="FIFO"):
            checker._on_event(Event(time=3.0, seq=2, callback=_noop))

    def test_nan_event_time_raises(self):
        checker = make_checker()
        with pytest.raises(InvariantError, match="NaN"):
            checker._on_event(Event(time=math.nan, seq=0, callback=_noop))


# ----------------------------------------------------------------------
# SIBS cross-queue policy
# ----------------------------------------------------------------------
class TestSIBSPolicy:
    def _pipeline(self):
        return SimpleNamespace(name="upload")

    def test_ride_up_is_allowed(self):
        checker = make_checker()
        queue = SizeQueue("upload-large", 10.0, math.inf)
        item = PipelineItem(payload=None, size_mb=2.0)
        queue.active = item
        checker._on_transfer_start(self._pipeline(), queue, item)
        assert checker.stats.transfers_checked == 1

    def test_oversized_item_on_small_queue_raises(self):
        checker = make_checker()
        queue = SizeQueue("upload-small", 0.0, 10.0)
        item = PipelineItem(payload=None, size_mb=50.0)
        queue.active = item
        with pytest.raises(InvariantError, match="SIBS"):
            checker._on_transfer_start(self._pipeline(), queue, item)

    def test_transfer_without_slot_raises(self):
        checker = make_checker()
        queue = SizeQueue("upload-all", 0.0, math.inf)
        item = PipelineItem(payload=None, size_mb=1.0)
        with pytest.raises(InvariantError, match="slot"):
            checker._on_transfer_start(self._pipeline(), queue, item)


# ----------------------------------------------------------------------
# Job conservation + completion-side checks
# ----------------------------------------------------------------------
class TestConservation:
    def test_balanced_completion_passes(self):
        checker = make_checker()
        checker.on_admit(completed_record())
        checker.on_complete(completed_record())
        assert checker.stats.completions_checked == 1

    def test_admitted_mismatch_raises(self):
        checker = make_checker(jobs_in_system=1, _open={"j1": object()})
        checker.on_admit(completed_record())
        with pytest.raises(InvariantError, match="conservation"):
            checker.on_complete(completed_record())

    def test_disagreeing_ledgers_raise(self):
        checker = make_checker(jobs_in_system=2, _open={"j1": object()})
        with pytest.raises(InvariantError, match="ledgers disagree"):
            checker.on_complete(completed_record())

    def test_negative_backlog_raises(self):
        checker = make_checker(
            upload=SimpleNamespace(name="upload", backlog_mb=-0.5)
        )
        checker.on_admit(completed_record())
        with pytest.raises(InvariantError, match="negative backlog"):
            checker.on_complete(completed_record())

    def test_inconsistent_record_raises(self):
        checker = make_checker()
        checker.on_admit(completed_record())
        bad = completed_record(arrival_time=10.0, completion_time=5.0)
        with pytest.raises(InvariantError, match="inconsistent"):
            checker.on_complete(bad)


# ----------------------------------------------------------------------
# End-of-run + broker accounting
# ----------------------------------------------------------------------
class TestFinishChecks:
    def test_clean_finish_passes(self):
        checker = make_checker()
        checker.on_admit(completed_record())
        checker.on_complete(completed_record())
        checker.on_finish(RunTrace(records=[completed_record()]))
        assert checker.stats.finishes_checked == 1

    def test_finish_with_inflight_jobs_raises(self):
        checker = make_checker(jobs_in_system=1, _open={"j1": object()})
        with pytest.raises(InvariantError, match="in flight"):
            checker.on_finish(RunTrace())

    def test_finish_with_unbalanced_counts_raises(self):
        checker = make_checker()
        checker.on_admit(completed_record())
        with pytest.raises(InvariantError, match="admitted"):
            checker.on_finish(RunTrace())

    def test_broker_counters_balanced(self):
        stats = StreamingSLAStats(
            submitted=4,
            accepted=2,
            accepted_degraded=1,
            rejected=1,
            rejections_by_reason={"backlog": 1},
        )
        make_checker().check_broker_counters(stats)

    def test_broker_counter_leak_raises(self):
        stats = StreamingSLAStats(submitted=3, accepted=2)
        with pytest.raises(InvariantError, match="admission conservation"):
            make_checker().check_broker_counters(stats)

    def test_broker_reason_sum_mismatch_raises(self):
        stats = StreamingSLAStats(
            submitted=2, accepted=1, rejected=1, rejections_by_reason={}
        )
        with pytest.raises(InvariantError, match="reasons"):
            make_checker().check_broker_counters(stats)
