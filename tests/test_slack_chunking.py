"""Slackness constraint and chunking tests (Eqs. 1-2, Alg. 2 lines 3-10)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chunking import ChunkPolicy, chunk_batch, pdfchunk, window_sigma
from repro.core.slack import SlackLedger, slack_time

from tests.conftest import make_job


class TestSlackTime:
    def test_empty_pool_collapses_to_now(self):
        assert slack_time([], now=100.0) == 100.0

    def test_max_of_preceding(self):
        assert slack_time([50.0, 120.0, 80.0], now=10.0) == 120.0

    def test_never_before_now(self):
        """Completions in the (estimated) past leave no usable cushion."""
        assert slack_time([5.0, 8.0], now=10.0) == 10.0


class TestSlackLedger:
    def test_seeded_from_pending(self):
        ledger = SlackLedger([50.0, 120.0], now=0.0)
        assert ledger.slack == 120.0

    def test_add_extends_cushion(self):
        ledger = SlackLedger([100.0], now=0.0)
        ledger.add(150.0)
        assert ledger.slack == 150.0
        ledger.add(120.0)  # earlier completion cannot shrink the max
        assert ledger.slack == 150.0

    def test_can_burst_boundary(self):
        ledger = SlackLedger([100.0], now=0.0)
        assert ledger.can_burst(100.0)       # equal is allowed (Eq. 2: >=)
        assert not ledger.can_burst(100.01)
        assert ledger.can_burst(105.0, margin=5.0)

    def test_head_of_queue_never_bursts(self):
        """With nothing pending, slack==now and any round trip fails."""
        ledger = SlackLedger([], now=50.0)
        assert not ledger.can_burst(50.1)

    @given(
        st.lists(st.floats(min_value=0, max_value=1e6), max_size=50),
        st.floats(min_value=0, max_value=1e6),
    )
    @settings(max_examples=100, deadline=None)
    def test_slack_is_monotone_under_adds(self, pool, now):
        ledger = SlackLedger(pool, now=now)
        previous = ledger.slack
        for value in pool:
            ledger.add(value * 2)
            assert ledger.slack >= previous
            previous = ledger.slack

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_matches_functional_form(self, pool):
        ledger = SlackLedger(pool, now=0.0)
        assert ledger.slack == slack_time(pool, now=0.0)


class TestWindowSigma:
    def test_uniform_sizes_zero_sigma(self):
        jobs = [make_job(job_id=i, size_mb=50.0) for i in range(1, 6)]
        assert window_sigma(jobs, 0, 5) == 0.0

    def test_hand_computed(self):
        jobs = [make_job(job_id=1, size_mb=10.0), make_job(job_id=2, size_mb=30.0)]
        assert window_sigma(jobs, 0, 2) == pytest.approx(10.0)  # std of {10,30}

    def test_window_clipped_at_end(self):
        jobs = [make_job(job_id=i, size_mb=s) for i, s in enumerate([10, 200, 10], 1)]
        assert window_sigma(jobs, 2, 5) == 0.0  # single-element window

    def test_empty(self):
        assert window_sigma([], 0, 5) == 0.0


class TestPdfchunk:
    def test_small_job_passes_through(self):
        job = make_job(size_mb=30.0)
        assert pdfchunk(job, target_mb=50.0) == [job]

    def test_chunk_count(self):
        job = make_job(size_mb=250.0)
        chunks = pdfchunk(job, target_mb=100.0)
        assert len(chunks) == 3
        assert all(c.input_mb <= 100.0 + 1e-9 for c in chunks)

    def test_max_chunks_cap(self):
        job = make_job(size_mb=300.0)
        chunks = pdfchunk(job, target_mb=1.0, max_chunks=4)
        assert len(chunks) == 4

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            pdfchunk(make_job(), target_mb=0.0)


class TestChunkBatch:
    def test_no_chunking_under_threshold(self):
        policy = ChunkPolicy(threshold_mb=1000.0)
        jobs = [make_job(job_id=i, size_mb=s) for i, s in enumerate([10, 280, 15], 1)]
        assert chunk_batch(jobs, policy) == jobs

    def test_high_dispersion_triggers_chunking(self):
        policy = ChunkPolicy(window=3, threshold_mb=50.0, min_chunk_mb=20.0,
                             max_chunk_mb=60.0)
        jobs = [make_job(job_id=i, size_mb=s) for i, s in enumerate([280, 10, 15], 1)]
        out = chunk_batch(jobs, policy)
        assert len(out) > len(jobs)
        # The big job was split; chunk sizes blend toward the window scale.
        big_chunks = [j for j in out if j.parent_id == 1]
        assert len(big_chunks) >= 2
        assert all(c.input_mb <= 60.0 + 1e-9 for c in big_chunks)

    def test_chunks_inserted_in_place(self):
        policy = ChunkPolicy(window=3, threshold_mb=50.0)
        jobs = [make_job(job_id=i, size_mb=s) for i, s in enumerate([280, 10, 15], 1)]
        out = chunk_batch(jobs, policy)
        keys = [j.key for j in out]
        assert keys == sorted(keys)  # queue order preserved

    def test_chunks_never_rechunked(self):
        policy = ChunkPolicy(window=2, threshold_mb=1.0, min_chunk_mb=20.0,
                             max_chunk_mb=40.0, max_chunks=16)
        jobs = [make_job(job_id=1, size_mb=300.0), make_job(job_id=2, size_mb=1.0)]
        out = chunk_batch(jobs, policy)
        total = sum(j.input_mb for j in out)
        assert total == pytest.approx(301.0, rel=0.02)

    def test_work_conserved(self):
        policy = ChunkPolicy(window=4, threshold_mb=30.0)
        sizes = [250, 5, 120, 40, 290, 8]
        jobs = [make_job(job_id=i, size_mb=s, proc_time=s) for i, s in enumerate(sizes, 1)]
        out = chunk_batch(jobs, policy)
        assert sum(j.input_mb for j in out) == pytest.approx(sum(sizes), rel=0.01)
        # Processing time within the ~2% chunk overhead budget.
        assert sum(j.true_proc_time for j in out) == pytest.approx(sum(sizes), rel=0.03)

    def test_position_scaling_coarsens_tail(self):
        base = ChunkPolicy(window=3, threshold_mb=10.0, position_scaling=0.0,
                           min_chunk_mb=20.0, max_chunk_mb=40.0)
        scaled = ChunkPolicy(window=3, threshold_mb=10.0, position_scaling=0.5,
                             min_chunk_mb=20.0, max_chunk_mb=40.0)
        jobs = [make_job(job_id=i, size_mb=s) for i, s in enumerate([250, 10, 250, 10, 250, 10], 1)]
        n_base = len(chunk_batch(jobs, base))
        n_scaled = len(chunk_batch(jobs, scaled))
        assert n_scaled <= n_base  # deeper positions chunk less

    @given(st.lists(st.floats(min_value=1.0, max_value=300.0), min_size=1, max_size=25))
    @settings(max_examples=50, deadline=None)
    def test_conservation_property(self, sizes):
        policy = ChunkPolicy()
        jobs = [make_job(job_id=i, size_mb=s, proc_time=max(1.0, s)) for i, s in enumerate(sizes, 1)]
        out = chunk_batch(jobs, policy)
        assert sum(j.input_mb for j in out) == pytest.approx(sum(sizes), rel=0.05)
        assert [j.key for j in out] == sorted(j.key for j in out)
