"""QRSM tests: design matrix, exact recovery, L1 fit, online tuning."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.qrsm import (
    QuadraticResponseSurface,
    quadratic_design_matrix,
    quadratic_term_names,
)
from repro.workload.document import FEATURE_NAMES
from repro.workload.generator import WorkloadGenerator
from repro.workload.processing import GroundTruthProcessingModel


class TestDesignMatrix:
    def test_column_count(self):
        d = 4
        X = np.ones((3, d))
        Z = quadratic_design_matrix(X)
        assert Z.shape == (3, 1 + d + d * (d - 1) // 2 + d)

    def test_term_values_hand_checked(self):
        Z = quadratic_design_matrix(np.array([[2.0, 3.0]]))
        # [1, x1, x2, x1*x2, x1^2, x2^2]
        assert Z[0].tolist() == [1.0, 2.0, 3.0, 6.0, 4.0, 9.0]

    def test_1d_input_promoted(self):
        Z = quadratic_design_matrix(np.array([2.0, 3.0]))
        assert Z.shape == (1, 6)

    def test_term_names_align_with_columns(self):
        names = quadratic_term_names(["a", "b"])
        assert names == ["1", "a", "b", "a*b", "a^2", "b^2"]
        d = len(FEATURE_NAMES)
        full = quadratic_term_names(FEATURE_NAMES)
        assert len(full) == 1 + d + d * (d - 1) // 2 + d


class TestFitting:
    def _noiseless_data(self, n=600, seed=0):
        gen = WorkloadGenerator(seed=seed, truth=GroundTruthProcessingModel(noise_sigma=0.0))
        return gen.sample_training_set(n)

    def test_exact_recovery_on_noiseless_quadratic(self):
        """The ground truth lives in the model family, so LSQ nails it."""
        feats, y = self._noiseless_data()
        model = QuadraticResponseSurface().fit(feats, y)
        assert model.r_squared(feats, y) > 0.99999
        held_feats, held_y = self._noiseless_data(n=100, seed=1)
        pred = model.predict(held_feats)
        assert np.allclose(pred, held_y, rtol=1e-4)

    def test_l1_fit_on_noiseless_quadratic(self):
        feats, y = self._noiseless_data(n=300)
        model = QuadraticResponseSurface(method="l1").fit(feats, y)
        assert model.r_squared(feats, y) > 0.999

    def test_noisy_fit_reasonable(self):
        gen = WorkloadGenerator(seed=3)
        feats, y = gen.sample_training_set(500)
        model = QuadraticResponseSurface().fit(feats, y)
        t_feats, t_y = gen.sample_training_set(200)
        assert model.r_squared(t_feats, t_y) > 0.7

    def test_scalar_predict(self, features):
        feats, y = self._noiseless_data(n=200)
        model = QuadraticResponseSurface().fit(feats, y)
        out = model.predict(features)
        assert isinstance(out, float) and out > 0

    def test_predictions_clamped_positive(self):
        feats, y = self._noiseless_data(n=200)
        model = QuadraticResponseSurface().fit(feats, y)
        # Whatever the extrapolation, never a negative time.
        gen = WorkloadGenerator(seed=9)
        preds = model.predict([gen.sample_features() for _ in range(100)])
        assert np.all(preds >= 0.1)

    def test_feature_subset(self):
        feats, y = self._noiseless_data(n=300)
        model = QuadraticResponseSurface(feature_indices=[0, 1, 2]).fit(feats, y)
        assert len(model.term_names) == 1 + 3 + 3 + 3
        # Subset model is still a decent (if not exact) fit.
        assert model.r_squared(feats, y) > 0.5

    def test_unfitted_raises(self, features):
        with pytest.raises(RuntimeError):
            QuadraticResponseSurface().predict(features)

    def test_fit_validates_shapes(self):
        feats, y = self._noiseless_data(n=10)
        with pytest.raises(ValueError):
            QuadraticResponseSurface().fit(feats, y[:-1])
        with pytest.raises(ValueError):
            QuadraticResponseSurface().fit(feats[:1], y[:1])

    def test_invalid_ctor_args(self):
        with pytest.raises(ValueError):
            QuadraticResponseSurface(method="huber")
        with pytest.raises(ValueError):
            QuadraticResponseSurface(forgetting=0.0)

    def test_r_squared_degenerate_constant_target(self):
        feats, _ = self._noiseless_data(n=50)
        y = np.full(50, 42.0)
        model = QuadraticResponseSurface().fit(feats, y)
        assert model.r_squared(feats, y) == pytest.approx(1.0, abs=1e-6)


class TestOnlineTuning:
    def test_observe_reduces_systematic_bias(self):
        """RLS tuning adapts the model to a shifted environment."""
        gen = WorkloadGenerator(seed=5, truth=GroundTruthProcessingModel(noise_sigma=0.0))
        feats, y = gen.sample_training_set(400)
        model = QuadraticResponseSurface(forgetting=0.98).fit(feats, y)
        # The "real" site runs 30% slower than the training fleet.
        shifted = GroundTruthProcessingModel(noise_sigma=0.0)
        stream = [gen.sample_features() for _ in range(300)]
        for f in stream:
            model.observe(f, 1.3 * shifted.mean_time(f))
        test = [gen.sample_features() for _ in range(100)]
        pred = np.array(model.predict(test))
        target = 1.3 * np.array([shifted.mean_time(f) for f in test])
        rel_err = np.abs(pred - target) / target
        assert np.median(rel_err) < 0.1

    def test_observe_requires_fit(self, features):
        with pytest.raises(RuntimeError):
            QuadraticResponseSurface().observe(features, 10.0)

    def test_observe_counts(self, features):
        gen = WorkloadGenerator(seed=5)
        feats, y = gen.sample_training_set(100)
        model = QuadraticResponseSurface().fit(feats, y)
        assert model.n_observations == 100
        model.observe(features, 50.0)
        assert model.n_observations == 101

    def test_single_observation_moves_prediction_toward_target(self, features):
        gen = WorkloadGenerator(seed=6)
        feats, y = gen.sample_training_set(200)
        model = QuadraticResponseSurface().fit(feats, y)
        before = model.predict(features)
        target = before * 2.0
        for _ in range(30):
            model.observe(features, target)
        after = model.predict(features)
        assert abs(after - target) < abs(before - target)


class TestProperties:
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_lsq_residual_never_exceeds_intercept_only(self, seed):
        """LSQ with an intercept column can't do worse than the mean model."""
        gen = WorkloadGenerator(seed=seed)
        feats, y = gen.sample_training_set(80)
        model = QuadraticResponseSurface().fit(feats, y)
        assert model.r_squared(feats, y) >= -1e-9
