"""Tests for ticket SLAs, workload statistics and the combined report."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.report import build_report
from repro.metrics.tickets import (
    FixedSlaTicket,
    ProportionalTicket,
    lateness,
    ticket_compliance,
    ticket_report,
)
from repro.workload.distributions import Bucket
from repro.workload.generator import WorkloadConfig, generate_workload
from repro.workload.stats import per_batch_size_cv, size_cv, tail_mass, workload_stats

from tests.test_metrics import make_trace, record


class TestTicketPolicies:
    def test_fixed_promise(self):
        policy = FixedSlaTicket(promise=300.0)
        assert policy.promise_s(record(1, 10.0)) == 300.0

    def test_proportional_promise(self):
        policy = ProportionalTicket(base_s=100.0, factor=3.0)
        r = record(1, 10.0, proc=50.0)
        assert policy.promise_s(r) == pytest.approx(100.0 + 150.0)

    def test_invalid_policies(self):
        with pytest.raises(ValueError):
            FixedSlaTicket(promise=0.0)
        with pytest.raises(ValueError):
            ProportionalTicket(base_s=-1.0)
        with pytest.raises(ValueError):
            ProportionalTicket(factor=0.0)


class TestCompliance:
    def trace(self):
        # Arrivals at 0; completions 100, 400, 700.
        return make_trace([record(1, 100.0), record(2, 400.0), record(3, 700.0)])

    def test_lateness_signs(self):
        late = lateness(self.trace(), FixedSlaTicket(promise=500.0))
        assert late.tolist() == [-400.0, -100.0, 200.0]

    def test_compliance_fraction(self):
        assert ticket_compliance(self.trace(), FixedSlaTicket(500.0)) == pytest.approx(2 / 3)
        assert ticket_compliance(self.trace(), FixedSlaTicket(1000.0)) == 1.0
        assert ticket_compliance(self.trace(), FixedSlaTicket(50.0)) == 0.0

    def test_empty_trace_is_compliant(self):
        assert ticket_compliance([], FixedSlaTicket(1.0)) == 1.0

    def test_report_distribution(self):
        rep = ticket_report(self.trace(), FixedSlaTicket(500.0))
        assert rep.n_jobs == 3
        assert rep.n_violations == 1
        assert rep.mean_tardiness_s == pytest.approx(200.0)
        assert rep.max_tardiness_s == pytest.approx(200.0)
        assert rep.mean_earliness_s == pytest.approx(250.0)
        assert rep.per_batch_compliance == {0: pytest.approx(2 / 3)}
        assert "ticket compliance" in rep.render()

    @given(st.floats(min_value=1.0, max_value=1e5))
    @settings(max_examples=50, deadline=None)
    def test_compliance_monotone_in_promise(self, promise):
        t = self.trace()
        lo = ticket_compliance(t, FixedSlaTicket(promise))
        hi = ticket_compliance(t, FixedSlaTicket(promise * 2))
        assert hi >= lo


class TestWorkloadStats:
    def test_size_cv_basics(self):
        assert size_cv([10.0, 10.0, 10.0]) == 0.0
        assert size_cv([]) == 0.0
        assert size_cv([1.0]) == 0.0
        assert size_cv([1.0, 3.0]) == pytest.approx(0.5)

    def test_tail_mass_bounds(self):
        assert tail_mass([], 0.1) == 0.0
        assert tail_mass([5.0], 0.1) == 1.0
        # Uniform-ish sizes: top decile carries roughly its share.
        mass = tail_mass(list(range(1, 101)), 0.1)
        assert 0.15 < mass < 0.25

    def test_tail_mass_heavy_tail(self):
        sizes = [1.0] * 99 + [1000.0]
        assert tail_mass(sizes, 0.01) > 0.9

    def test_tail_mass_invalid(self):
        with pytest.raises(ValueError):
            tail_mass([1.0], 0.0)

    def test_workload_stats_consistency(self):
        batches = generate_workload(
            WorkloadConfig(bucket=Bucket.UNIFORM, n_batches=3, seed=5)
        )
        stats = workload_stats(batches)
        jobs = [j for b in batches for j in b]
        assert stats.n_jobs == len(jobs)
        assert stats.total_mb == pytest.approx(sum(j.input_mb for j in jobs))
        assert stats.arrival_span_s == pytest.approx(360.0)
        assert 0 < stats.size_cv < 2
        assert "batches" in stats.render()

    def test_per_batch_cv_keys(self):
        batches = generate_workload(WorkloadConfig(n_batches=4, seed=5))
        cvs = per_batch_size_cv(batches)
        assert sorted(cvs) == [0, 1, 2, 3]
        assert all(v >= 0 for v in cvs.values())

    def test_empty_workload_rejected(self):
        with pytest.raises(ValueError):
            workload_stats([])

    def test_bucket_cv_ordering(self):
        """The uniform bucket is the most size-dispersed of the three."""
        cvs = {}
        for bucket in Bucket:
            batches = generate_workload(
                WorkloadConfig(bucket=bucket, n_batches=5, seed=6)
            )
            cvs[bucket] = workload_stats(batches).size_cv
        assert cvs[Bucket.UNIFORM] > cvs[Bucket.LARGE]


class TestComparisonReport:
    def traces(self):
        t1 = make_trace([record(1, 100.0), record(2, 200.0)],
                        ic_busy=100.0, ic_m=2, ec_m=1)
        t1.scheduler_name = "A"
        t2 = make_trace([record(1, 150.0), record(2, 180.0)],
                        ic_busy=120.0, ic_m=2, ec_m=1)
        t2.scheduler_name = "B"
        return {"A": t1, "B": t2}

    def test_report_rows(self):
        rep = build_report(self.traces(), ticket_policy=FixedSlaTicket(150.0))
        assert set(rep.reports) == {"A", "B"}
        row = rep.reports["A"].as_row()
        assert "oo_area_t0" in row and "tickets_%" in row
        assert rep.reports["A"].ticket_compliance == pytest.approx(0.5)

    def test_render_contains_all_schedulers(self):
        out = build_report(self.traces()).render()
        assert "A" in out and "B" in out and "tickets_%" in out

    def test_empty(self):
        assert "(no runs)" in build_report({}).render()

    def test_common_horizon_alignment(self):
        rep = build_report(self.traces())
        # Both traces share the horizon, so the faster scheduler's strict
        # OO area is at least the slower one's (it finishes earlier).
        assert rep.reports["B"].oo_area_strict >= rep.reports["A"].oo_area_strict * 0.5
