"""CSV workload import tests."""

from __future__ import annotations

import textwrap

import pytest

from repro.core.greedy import GreedyScheduler
from repro.sim.environment import CloudBurstEnvironment, SystemConfig
from repro.sim.validation import validate_trace
from repro.workload.document import JobType
from repro.workload.generator import WorkloadGenerator
from repro.workload.trace_import import import_workload_csv, jobs_to_batches, load_jobs_csv


def write_csv(tmp_path, text):
    path = tmp_path / "jobs.csv"
    path.write_text(textwrap.dedent(text).lstrip())
    return path


class TestLoadCsv:
    def test_minimal_size_only(self, tmp_path):
        path = write_csv(tmp_path, """
            size_mb
            10.5
            200
        """)
        jobs = load_jobs_csv(path, seed=1)
        assert [j.input_mb for j in jobs] == [10.5, 200.0]
        # Missing fields synthesised consistently.
        assert all(j.true_proc_time > 0 and j.output_mb > 0 for j in jobs)
        assert all(j.features.n_pages >= 1 for j in jobs)

    def test_measured_fields_respected(self, tmp_path):
        path = write_csv(tmp_path, """
            size_mb,proc_time_s,output_mb,color_fraction,job_type
            50,123.0,20.0,0.75,book
        """)
        (job,) = load_jobs_csv(path)
        assert job.true_proc_time == 123.0
        assert job.output_mb == 20.0
        assert job.features.color_fraction == 0.75
        assert job.features.job_type is JobType.BOOK

    def test_deterministic_synthesis(self, tmp_path):
        path = write_csv(tmp_path, """
            size_mb
            80
            90
        """)
        a = load_jobs_csv(path, seed=4)
        b = load_jobs_csv(path, seed=4)
        assert [j.true_proc_time for j in a] == [j.true_proc_time for j in b]

    def test_errors(self, tmp_path):
        with pytest.raises(ValueError):
            load_jobs_csv(write_csv(tmp_path, "n_pages\n3\n"))
        with pytest.raises(ValueError):
            load_jobs_csv(write_csv(tmp_path, "size_mb\n-5\n"))
        with pytest.raises(ValueError):
            load_jobs_csv(write_csv(tmp_path, "size_mb\nabc\n"))
        with pytest.raises(ValueError):
            load_jobs_csv(write_csv(tmp_path, "size_mb\n"))


class TestBatching:
    def test_batches_by_arrival_column(self, tmp_path):
        path = write_csv(tmp_path, """
            size_mb,arrival_s
            10,0
            20,0
            30,180
        """)
        batches = import_workload_csv(path)
        assert [len(b.jobs) for b in batches] == [2, 1]
        assert [b.arrival_time for b in batches] == [0.0, 180.0]
        ids = [j.job_id for b in batches for j in b.jobs]
        assert ids == [1, 2, 3]

    def test_default_packing_without_arrivals(self, tmp_path):
        rows = "\n".join("25" for _ in range(7))
        path = write_csv(tmp_path, f"size_mb\n{rows}\n")
        batches = import_workload_csv(path, default_batch_size=3,
                                      default_interval_s=60.0)
        assert [len(b.jobs) for b in batches] == [3, 3, 1]
        assert [b.arrival_time for b in batches] == [0.0, 60.0, 120.0]

    def test_empty_jobs_rejected(self):
        with pytest.raises(ValueError):
            jobs_to_batches([])


class TestEndToEnd:
    def test_imported_workload_runs_clean(self, tmp_path):
        rows = "\n".join(f"{s},{(i // 4) * 180}" for i, s in
                         enumerate([120, 30, 250, 60, 90, 180, 20, 270]))
        path = write_csv(tmp_path, f"size_mb,arrival_s\n{rows}\n")
        batches = import_workload_csv(path, seed=3)
        env = CloudBurstEnvironment(SystemConfig(ic_machines=3, ec_machines=2, seed=5))
        gen = WorkloadGenerator(seed=3)
        env.pretrain_qrsm(*gen.sample_training_set(150))
        trace = env.run(batches, GreedyScheduler(env.estimator))
        assert validate_trace(trace) == []
        assert len(trace.records) == 8
