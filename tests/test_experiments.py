"""Experiment harness tests: specs, runner fairness, figures, CLI."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.experiments import figures, tables
from repro.experiments.ascii_plot import bar_chart, line_plot, multi_line_plot, render_table
from repro.cli import main as cli_main
from repro.experiments.config import DEFAULT_SPEC, HIGH_VARIATION_SPEC, ExperimentSpec
from repro.experiments.runner import (
    SCHEDULER_NAMES,
    build_workload,
    make_scheduler,
    run_comparison,
    run_one,
)
from repro.sim.environment import CloudBurstEnvironment, SystemConfig
from repro.workload.distributions import Bucket

#: Small spec so harness tests stay fast.
FAST = ExperimentSpec(
    n_batches=2,
    mean_jobs_per_batch=6,
    system=SystemConfig(ic_machines=4, ec_machines=2, seed=7),
)


class TestSpec:
    def test_with_bucket(self):
        spec = DEFAULT_SPEC.with_bucket(Bucket.LARGE)
        assert spec.bucket is Bucket.LARGE
        assert spec.n_batches == DEFAULT_SPEC.n_batches

    def test_with_system(self):
        spec = DEFAULT_SPEC.with_system(bandwidth_variation=0.9)
        assert spec.system.bandwidth_variation == 0.9

    def test_with_seed_changes_both_seeds(self):
        spec = DEFAULT_SPEC.with_seed(7)
        assert spec.workload_seed == 7
        assert spec.system.seed != DEFAULT_SPEC.system.seed

    def test_high_variation_spec(self):
        assert HIGH_VARIATION_SPEC.bucket is Bucket.LARGE
        assert HIGH_VARIATION_SPEC.system.bandwidth_variation > DEFAULT_SPEC.system.bandwidth_variation

    def test_workload_config_mirrors_spec(self):
        cfg = FAST.workload_config()
        assert cfg.n_batches == 2 and cfg.seed == FAST.workload_seed


class TestRunner:
    def test_unknown_scheduler_rejected(self):
        env = CloudBurstEnvironment(FAST.system)
        with pytest.raises(ValueError):
            make_scheduler("nope", env)

    def test_all_registered_schedulers_run(self):
        traces = run_comparison(FAST, scheduler_names=SCHEDULER_NAMES)
        assert set(traces) == set(SCHEDULER_NAMES)
        for trace in traces.values():
            assert all(r.completed for r in trace.records)

    def test_comparison_replays_identical_workload(self):
        traces = run_comparison(FAST, scheduler_names=("ICOnly", "Greedy"))
        # Same job ids and true processing totals (chunking aside, neither
        # of these schedulers chunks).
        a = sorted((r.job_id, r.true_proc_time) for r in traces["ICOnly"].records)
        b = sorted((r.job_id, r.true_proc_time) for r in traces["Greedy"].records)
        assert a == b

    def test_run_one_is_deterministic(self):
        t1 = run_one("Greedy", FAST)
        t2 = run_one("Greedy", FAST)
        assert [r.completion_time for r in t1.records] == [
            r.completion_time for r in t2.records
        ]

    def test_env_hook_applied(self):
        seen = []
        run_one("ICOnly", FAST, env_hook=lambda env: seen.append(env.config.seed))
        assert seen == [FAST.system.seed]

    def test_build_workload_deterministic(self):
        w1 = build_workload(FAST)
        w2 = build_workload(FAST)
        assert [j.job_id for b in w1 for j in b] == [j.job_id for b in w2 for j in b]

    def test_trace_metadata(self):
        trace = run_one("Op", FAST)
        assert trace.metadata["bucket"] == FAST.bucket.value
        assert trace.scheduler_name == "Op"


class TestFigures:
    def test_fig3_fit_quality(self):
        r = figures.fig3_qrsm(n_train=200, n_test=100)
        assert r.r_squared_test > 0.7
        assert "Figure 3" in r.render()
        assert len(r.surface_sizes) == len(r.surface_pred) == len(r.surface_true)

    def test_fig4_learned_profile_tracks_truth(self):
        r = figures.fig4_bandwidth(n_days=1.0, probe_interval_s=300.0)
        assert r.mean_abs_error < 1.5
        out = r.render()
        assert "Figure 4(a)" in out and "Figure 4(b)" in out

    def test_fig6_structure(self):
        r = figures.fig6_makespan(spec=FAST, buckets=(Bucket.UNIFORM,), seeds=(42,))
        assert r.buckets == ["uniform"]
        assert set(r.makespans["uniform"]) == {"ICOnly", "Greedy", "Op"}
        assert "Figure 6" in r.render()

    def test_fig7_and_8(self):
        figs = figures.fig7_completion(spec=FAST)
        assert [f.bucket for f in figs] == ["uniform", "small"]
        for f in figs:
            assert set(f.series) == {"Greedy", "Op"}
            assert "Completion times" in f.render()
        large = figures.fig8_completion_large(spec=FAST)
        assert large.bucket == "large"

    def test_fig9_series_cover_common_horizon(self):
        r = figures.fig9_oo_metric(spec=FAST.with_bucket(Bucket.LARGE))
        lengths = {len(s.times) for s in r.series.values()}
        assert len(lengths) == 1
        assert "Figure 9" in r.render()

    def test_fig10_relative_series(self):
        r = figures.fig10_oo_relative(spec=FAST.with_bucket(Bucket.LARGE))
        assert set(r.relative) == {"Greedy", "Op", "OpSIBS"}
        assert "ICOnly" not in r.relative
        assert "Figure 10" in r.render()


class TestTables:
    def test_table1_rows(self):
        r = tables.table1_metrics(spec=FAST, seeds=(42,))
        assert len(r.rows) == 4  # 2 buckets x 2 schedulers
        rendered = r.render()
        assert "Table I" in rendered and "paper_ic" in rendered

    def test_sibs_result(self):
        r = tables.sibs_optimization(spec=FAST, seeds=(42,))
        assert 0 <= r.op_ec_util <= 1 and 0 <= r.sibs_ec_util <= 1
        assert "V.B.4" in r.render()


class TestAsciiPlot:
    def test_line_plot_contains_bounds(self):
        out = line_plot([0, 1, 2], [10.0, 20.0, 30.0], title="t")
        assert "30.0" in out and "10.0" in out and "t" in out

    def test_multi_line_legend(self):
        out = multi_line_plot([0, 1], {"alpha": [1, 2], "beta": [2, 1]})
        assert "alpha" in out and "beta" in out

    def test_empty_series(self):
        assert "(no data)" in multi_line_plot([], {})

    def test_bar_chart(self):
        out = bar_chart(["a", "bb"], [1.0, 2.0], title="bars")
        assert "bars" in out and "#" in out

    def test_render_table(self):
        out = render_table([{"x": 1, "y": "q"}], title="T")
        assert "T" in out and " x" in out or "x" in out

    def test_render_table_empty(self):
        assert "(no rows)" in render_table([])


class TestCli:
    def test_cli_fig3(self, capsys):
        assert cli_main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out

    def test_cli_rejects_unknown(self):
        with pytest.raises(SystemExit):
            cli_main(["nope"])


class TestCliSubcommands:
    def test_snapshot_and_diff_roundtrip(self, tmp_path, capsys):
        import os
        a = tmp_path / "a"
        b = tmp_path / "b"
        argv_a = ["snapshot", str(a), "--bucket", "uniform", "--seed", "42"]
        argv_b = ["snapshot", str(b), "--bucket", "uniform", "--seed", "42"]
        assert cli_main(argv_a) == 0
        assert cli_main(argv_b) == 0
        assert cli_main(["diff", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "no drift" in out

    def test_diff_detects_drift_and_exits_nonzero(self, tmp_path, capsys):
        import json
        a = tmp_path / "a"
        b = tmp_path / "b"
        cli_main(["snapshot", str(a), "--bucket", "uniform", "--seed", "42"])
        cli_main(["snapshot", str(b), "--bucket", "uniform", "--seed", "42"])
        manifest = json.loads((b / "manifest.json").read_text())
        manifest["summaries"]["Op"]["speedup"] *= 2.0
        (b / "manifest.json").write_text(json.dumps(manifest))
        capsys.readouterr()
        assert cli_main(["diff", str(a), str(b)]) == 1
        assert "speedup changed" in capsys.readouterr().out

    def test_render_sugar(self, capsys):
        assert cli_main(["fig3"]) == 0
        assert "Figure 3" in capsys.readouterr().out


class TestFig3Surface:
    def test_2d_surface_shape_and_monotonicity(self):
        r = figures.fig3_qrsm(n_train=200, n_test=80)
        assert r.grid_pred.shape == (len(r.grid_sizes), len(r.grid_colors))
        # Processing time grows with document size at every colour level...
        assert np.all(np.diff(r.grid_pred, axis=0).mean(axis=1) > 0)
        # ...and (on average) with colour fraction: the interaction term.
        assert np.all(np.diff(r.grid_pred, axis=1).mean(axis=0) > 0)
        assert "size\\clr" in r.render()
