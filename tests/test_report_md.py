"""Full-report generator tests (quick mode)."""

from __future__ import annotations

import pytest

from repro.experiments.report_md import generate_reproduction_report


class TestFullReport:
    @pytest.fixture(scope="class")
    def report_text(self, tmp_path_factory) -> str:
        path = tmp_path_factory.mktemp("report") / "report.md"
        out = generate_reproduction_report(path, quick=True)
        assert out == path
        return path.read_text()

    def test_every_section_present(self, report_text):
        for heading in (
            "# Reproduction report",
            "## Workload",
            "## Figure 3", "## Figure 4", "## Figure 6", "## Figure 7",
            "## Figure 8", "## Figure 9", "## Figure 10",
            "## Table I", "## Section V.B.4",
        ):
            assert heading in report_text, f"missing section: {heading}"

    def test_contains_rendered_numbers(self, report_text):
        assert "R^2" in report_text
        assert "paper_ic" in report_text
        assert "speedup gain" in report_text

    def test_code_blocks_balanced(self, report_text):
        assert report_text.count("```") % 2 == 0

    def test_records_generation_metadata(self, report_text):
        assert "quick=True" in report_text
