"""Integration tests for the fleet HTTP/JSON front, over a real socket.

Pins the error contract from the module docstring: every failure wears
the one versioned envelope ``{"error": {"code", "message", "path"}}`` —
malformed bodies get a 400 with a path-qualified schema error and never
touch a shard, unknown tenants get 404, exhausted quotas get the
distinct 429, and no request — including one that trips an internal
fault — kills the server.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.fleet import (
    FleetAPIServer,
    FleetConfig,
    FleetManager,
    TenantSpec,
    TenantRegistry,
)


@pytest.fixture
def server():
    registry = TenantRegistry(
        [
            TenantSpec(tenant_id="roomy"),
            TenantSpec(tenant_id="capped", quota_jobs=2),
        ]
    )
    manager = FleetManager(
        FleetConfig(n_shards=2, seed=2024, pretrain_jobs=40), registry
    )
    srv = FleetAPIServer(manager, port=0)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    try:
        yield srv
    finally:
        srv.shutdown()
        srv.server_close()
        thread.join(timeout=5)


def request(srv, path, body=None, raw: bytes = None):
    """One round trip; returns (status, parsed_json_body)."""
    data = raw if raw is not None else (
        json.dumps(body).encode() if body is not None else None
    )
    req = urllib.request.Request(
        srv.url + path,
        data=data,
        headers={"Content-Type": "application/json"},
        method="POST" if data is not None else "GET",
    )
    try:
        with urllib.request.urlopen(req, timeout=10) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


# ----------------------------------------------------------------------
# Happy paths
# ----------------------------------------------------------------------
class TestEndpoints:
    def test_health(self, server):
        status, body = request(server, "/v1/health")
        assert status == 200
        assert body["status"] == "ok"
        assert body["n_shards"] == 2
        assert body["n_tenants"] == 2
        assert body["executor"] == "inprocess"
        assert all(w["alive"] for w in body["workers"])

    def test_tenants_directory_reports_quota_state(self, server):
        status, body = request(server, "/v1/tenants")
        assert status == 200
        by_id = {t["tenant"]: t for t in body["tenants"]}
        assert by_id["capped"]["quota_jobs"] == 2
        assert by_id["capped"]["quota_remaining"] == 2
        assert by_id["roomy"]["quota_jobs"] is None
        assert all(0 <= t["shard"] < 2 for t in by_id.values())

    def test_submit_returns_one_outcome_per_job(self, server):
        status, body = request(
            server, "/v1/jobs", {"tenant": "roomy", "n_jobs": 3}
        )
        assert status == 200
        assert body["tenant"] == "roomy"
        assert len(body["outcomes"]) == 3
        for outcome in body["outcomes"]:
            assert outcome["decision"] in ("accept", "accept_degraded", "reject")
            assert outcome["promise_s"] is None or outcome["promise_s"] > 0

    def test_quote_prices_without_admitting(self, server):
        status, body = request(server, "/v1/quotes", {"tenant": "roomy"})
        assert status == 200
        assert body["est_completion_s"] > 0
        stats_status, stats = request(server, "/v1/stats")
        assert stats_status == 200
        assert stats["fleet"]["submitted"] == 0

    def test_stats_fleet_counters_sum_the_shards(self, server):
        request(server, "/v1/jobs", {"tenant": "roomy", "n_jobs": 2})
        request(server, "/v1/jobs", {"tenant": "capped", "n_jobs": 1})
        status, body = request(server, "/v1/stats")
        assert status == 200
        assert body["fleet"]["submitted"] == sum(
            s["stats"]["submitted"] for s in body["shards"]
        )
        assert body["fleet"]["submitted"] == 3


# ----------------------------------------------------------------------
# Error contract
# ----------------------------------------------------------------------
class TestErrorContract:
    def test_bad_json_is_a_400(self, server):
        status, body = request(server, "/v1/jobs", raw=b"{not json")
        assert status == 400
        assert body["error"]["code"] == "invalid_json"
        assert body["error"]["path"] == "/v1/jobs"

    def test_empty_body_is_a_400(self, server):
        status, body = request(server, "/v1/jobs", raw=b"")
        assert status == 400
        assert body["error"]["code"] == "empty_body"

    @pytest.mark.parametrize(
        "payload, path, fragment",
        [
            ({"n_jobs": 1}, "$", "tenant"),                     # missing key
            ({"tenant": "roomy", "n_jobs": "three"}, "n_jobs", "integer"),
            ({"tenant": "roomy", "n_jobs": 0}, "n_jobs", "minimum"),
            ({"tenant": "", "n_jobs": 1}, "tenant", "shorter"),
            ({"tenant": "roomy", "n_jobs": 1, "x": 1}, "$", "x"),  # extra key
            (
                {"tenant": "roomy", "n_jobs": 1, "arrival_time_s": -5},
                "arrival_time_s",
                "minimum",
            ),
        ],
    )
    def test_schema_violations_are_400_with_a_path(
        self, server, payload, path, fragment
    ):
        status, body = request(server, "/v1/jobs", payload)
        assert status == 400
        assert body["error"]["code"] == "schema_violation"
        assert body["error"]["path"] == path
        assert fragment in body["error"]["message"]

    def test_schema_violation_leaves_the_shard_untouched(self, server):
        request(server, "/v1/jobs", {"tenant": "roomy", "n_jobs": -1})
        status, stats = request(server, "/v1/stats")
        assert status == 200
        assert stats["fleet"]["submitted"] == 0

    def test_unknown_tenant_is_a_404(self, server):
        status, body = request(
            server, "/v1/jobs", {"tenant": "nobody", "n_jobs": 1}
        )
        assert status == 404
        assert body["error"]["code"] == "unknown_tenant"

    def test_unknown_route_is_a_404(self, server):
        status, body = request(server, "/v1/nope")
        assert status == 404
        assert body["error"]["code"] == "not_found"
        assert body["error"]["path"] == "/v1/nope"
        status, body = request(server, "/v1/health", {"x": 1})
        assert status == 404  # POST to a GET-only path

    def test_oversized_body_is_a_413(self, server):
        blob = b'{"tenant": "' + b"a" * (70 * 1024) + b'"}'
        status, body = request(server, "/v1/jobs", raw=blob)
        assert status == 413
        assert body["error"]["code"] == "body_too_large"

    def test_quota_exhaustion_is_a_distinct_429(self, server):
        first_status, first = request(
            server, "/v1/jobs", {"tenant": "capped", "n_jobs": 5}
        )
        assert first_status == 200
        reasons = [o["reason"] for o in first["outcomes"]]
        assert reasons.count("quota") >= 3  # overflow past the quota of 2
        # Once exhausted, the whole request is refused up front.
        status, body = request(
            server, "/v1/jobs", {"tenant": "capped", "n_jobs": 1}
        )
        assert status == 429
        assert body["error"]["code"] == "quota_exhausted"
        assert "capped" in body["error"]["message"]

    def test_server_survives_every_error_class(self, server):
        request(server, "/v1/jobs", raw=b"{broken")
        request(server, "/v1/jobs", {"tenant": "nobody", "n_jobs": 1})
        request(server, "/v1/jobs", {"tenant": "roomy", "n_jobs": -3})
        request(server, "/v1/jobs", {"tenant": "capped", "n_jobs": 5})
        request(server, "/v1/jobs", {"tenant": "capped", "n_jobs": 1})  # 429
        status, body = request(server, "/v1/health")
        assert status == 200
        assert body["status"] == "ok"

    def test_internal_fault_returns_500_and_keeps_serving(self, server):
        # Sabotage one handler path: an unregistered exception type must
        # surface as a 500, not kill the server loop.
        original = server.manager.submit_count
        server.manager.submit_count = lambda *a, **kw: (_ for _ in ()).throw(
            OSError("disk on fire")
        )
        try:
            status, body = request(
                server, "/v1/jobs", {"tenant": "roomy", "n_jobs": 1}
            )
        finally:
            server.manager.submit_count = original
        assert status == 500
        assert body["error"]["code"] == "internal"
        assert "disk on fire" in body["error"]["message"]
        status, _ = request(server, "/v1/health")
        assert status == 200
