"""Unit tests for the discrete-event engine."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import SimulationError, Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, fired.append, "late")
        sim.schedule(1.0, fired.append, "early")
        sim.schedule(3.0, fired.append, "mid")
        sim.run()
        assert fired == ["early", "mid", "late"]

    def test_same_time_events_fire_fifo(self):
        sim = Simulator()
        fired = []
        for k in range(10):
            sim.schedule(2.0, fired.append, k)
        sim.run()
        assert fired == list(range(10))

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(7.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [7.5]
        assert sim.now == 7.5

    def test_schedule_at_absolute_time(self):
        sim = Simulator(start_time=100.0)
        fired = []
        sim.schedule_at(150.0, fired.append, "x")
        sim.run()
        assert sim.now == 150.0 and fired == ["x"]

    def test_scheduling_in_past_raises(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(SimulationError):
            sim.schedule_at(5.0, lambda: None)

    def test_negative_delay_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_nan_time_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_at(float("nan"), lambda: None)

    def test_zero_delay_event_fires_at_now(self):
        sim = Simulator(start_time=4.0)
        fired = []
        sim.schedule(0.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [4.0]

    def test_callback_args_passed_through(self):
        sim = Simulator()
        got = []
        sim.schedule(1.0, lambda a, b: got.append((a, b)), 1, "two")
        sim.run()
        assert got == [(1, "two")]


class TestCancellation:
    def test_cancelled_event_is_skipped(self):
        sim = Simulator()
        fired = []
        ev = sim.schedule(1.0, fired.append, "a")
        sim.schedule(2.0, fired.append, "b")
        ev.cancel()
        sim.run()
        assert fired == ["b"]

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        ev = sim.schedule(1.0, lambda: None)
        ev.cancel()
        ev.cancel()
        sim.run()
        assert sim.events_processed == 0

    def test_cancel_from_within_callback(self):
        sim = Simulator()
        fired = []
        later = sim.schedule(5.0, fired.append, "should-not-fire")
        sim.schedule(1.0, later.cancel)
        sim.run()
        assert fired == []

    def test_peek_skips_cancelled(self):
        sim = Simulator()
        ev = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        ev.cancel()
        assert sim.peek() == 2.0


class TestRunControl:
    def test_run_until_stops_before_future_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(10.0, fired.append, "b")
        sim.run(until=5.0)
        assert fired == ["a"]
        assert sim.now == 5.0  # clock advanced to the horizon

    def test_run_until_resumes(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(10.0, fired.append, "b")
        sim.run(until=5.0)
        sim.run()
        assert fired == ["a", "b"]

    def test_event_at_until_boundary_fires(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, fired.append, "edge")
        sim.run(until=5.0)
        assert fired == ["edge"]

    def test_max_events_guard(self):
        sim = Simulator()

        def rearm():
            sim.schedule(1.0, rearm)

        sim.schedule(1.0, rearm)
        sim.run(max_events=50)
        assert sim.events_processed == 50

    def test_step_returns_false_on_empty_heap(self):
        sim = Simulator()
        assert sim.step() is False

    def test_events_scheduled_during_callbacks_run(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: sim.schedule(1.0, fired.append, "child"))
        sim.run()
        assert fired == ["child"] and sim.now == 2.0

    def test_not_reentrant(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: sim.run())
        with pytest.raises(SimulationError):
            sim.run()

    def test_advance_to_moves_clock(self):
        sim = Simulator()
        sim.advance_to(42.0)
        assert sim.now == 42.0

    def test_advance_past_pending_event_raises(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        with pytest.raises(SimulationError):
            sim.advance_to(10.0)

    def test_advance_backwards_raises(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(SimulationError):
            sim.advance_to(5.0)


class TestIncrementalStepping:
    """The run_until / peek_next_time API the online broker drives."""

    def test_peek_next_time_matches_peek(self):
        sim = Simulator()
        assert sim.peek_next_time() is None
        sim.schedule(3.0, lambda: None)
        assert sim.peek_next_time() == 3.0 == sim.peek()

    def test_run_until_executes_strictly_earlier_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(2.0, fired.append, "b")
        sim.schedule(9.0, fired.append, "c")
        executed = sim.run_until(5.0)
        assert executed == 2
        assert fired == ["a", "b"]
        assert sim.now == 5.0
        assert sim.peek_next_time() == 9.0

    def test_arrival_exactly_at_next_event_time_leaves_it_pending(self):
        """Exclusive boundary: an event AT the arrival instant stays queued.

        This is the tie-break that makes broker replay trace-identical to
        the offline runner — a batch arrival coinciding with a probe tick
        or capacity epoch must be handled before the internal event fires.
        """
        sim = Simulator()
        fired = []
        sim.schedule(5.0, fired.append, "edge")
        executed = sim.run_until(5.0)
        assert executed == 0
        assert fired == []
        assert sim.now == 5.0
        assert sim.peek_next_time() == 5.0  # still pending
        sim.run()
        assert fired == ["edge"]

    def test_inclusive_boundary_fires_same_time_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, fired.append, "edge")
        executed = sim.run_until(5.0, inclusive=True)
        assert executed == 1
        assert fired == ["edge"]

    def test_empty_queue_advances_clock(self):
        sim = Simulator(start_time=2.0)
        executed = sim.run_until(8.0)
        assert executed == 0
        assert sim.now == 8.0

    def test_run_until_now_is_a_noop(self):
        sim = Simulator(start_time=3.0)
        sim.schedule(0.0, lambda: None)
        assert sim.run_until(3.0) == 0
        assert sim.now == 3.0

    def test_run_until_backwards_raises(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(SimulationError):
            sim.run_until(5.0)

    def test_run_until_nan_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.run_until(float("nan"))

    def test_run_until_not_reentrant(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: sim.run_until(9.0))
        with pytest.raises(SimulationError):
            sim.run_until(5.0)

    def test_events_spawned_inside_window_still_run(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: sim.schedule(1.0, fired.append, "child"))
        sim.run_until(3.0)
        assert fired == ["child"]
        assert sim.now == 3.0

    def test_interleaves_with_run(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(6.0, fired.append, "b")
        sim.run_until(4.0)
        fired.append("arrival@4")
        sim.run()
        assert fired == ["a", "arrival@4", "b"]


class TestProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_execution_order_is_sorted_stable(self, delays):
        """Events always run in (time, insertion) order for any delay set."""
        sim = Simulator()
        fired = []
        for idx, d in enumerate(delays):
            sim.schedule(d, fired.append, (d, idx))
        sim.run()
        assert fired == sorted(fired)

    @given(
        st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50),
        st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_cancelled_subset_never_fires(self, delays, data):
        sim = Simulator()
        fired = []
        events = [sim.schedule(d, fired.append, i) for i, d in enumerate(delays)]
        to_cancel = data.draw(
            st.sets(st.integers(min_value=0, max_value=len(delays) - 1))
        )
        for i in to_cancel:
            events[i].cancel()
        sim.run()
        assert set(fired) == set(range(len(delays))) - to_cancel


class TestEdgeCases:
    """Corner behaviours the invariant checker and broker lean on."""

    def test_cancel_after_event_already_ran_is_harmless(self):
        """Lazy cancellation of an event the heap already popped.

        ``cancel()`` is only a flag; flipping it on a handle whose
        callback already executed must neither raise nor disturb later
        events (the fluid-flow link cancels completion events it may
        have just consumed during a capacity rebuild).
        """
        sim = Simulator()
        fired = []
        first = sim.schedule(1.0, fired.append, "first")
        sim.schedule(2.0, fired.append, "second")
        assert sim.step()  # pops and runs `first`
        first.cancel()  # stale handle: event is gone from the heap
        assert not first.active
        sim.run()
        assert fired == ["first", "second"]
        assert sim.events_processed == 2

    def test_cancel_from_within_own_callback(self):
        """An event cancelling *itself* mid-execution is a no-op too."""
        sim = Simulator()
        holder = {}
        holder["ev"] = sim.schedule(1.0, lambda: holder["ev"].cancel())
        sim.run()
        assert sim.events_processed == 1

    def test_same_instant_fifo_across_mixed_scheduling(self):
        """FIFO tie-break holds for events reaching one instant two ways:
        scheduled directly and scheduled *from a callback* at now."""
        sim = Simulator()
        fired = []
        sim.schedule(5.0, fired.append, "a")

        def spawn_at_now():
            fired.append("b")
            sim.schedule(0.0, fired.append, "d")  # same instant, higher seq

        sim.schedule(5.0, spawn_at_now)
        sim.schedule(5.0, fired.append, "c")
        sim.run()
        assert fired == ["a", "b", "c", "d"]

    def test_run_until_boundary_is_exclusive(self):
        """An event at exactly ``run_until``'s target stays pending."""
        sim = Simulator()
        fired = []
        sim.schedule_at(10.0, fired.append, "edge")
        executed = sim.run_until(10.0)
        assert executed == 0
        assert fired == []
        assert sim.now == 10.0
        # The pending event still fires on the next advance, at its time.
        sim.run_until(10.0, inclusive=True)
        assert fired == ["edge"]
        assert sim.now == 10.0

    def test_scheduling_exactly_at_now_after_boundary_advance(self):
        """After the clock lands exactly on t, scheduling at t is legal
        (not "in the past") and runs after the earlier same-time event."""
        sim = Simulator()
        fired = []
        sim.schedule_at(10.0, fired.append, "pre")
        sim.run_until(10.0)
        sim.schedule_at(10.0, fired.append, "post")
        sim.run()
        assert fired == ["pre", "post"]


class TestHeapCompaction:
    """Mass lazy cancellation must shrink the heap without reordering."""

    def test_mass_cancellation_compacts_heap(self):
        sim = Simulator()
        fired: list = []
        dead = [
            sim.schedule_at(1000.0 + 0.001 * i, fired.append, "dead")
            for i in range(3000)
        ]
        for ev in dead:
            ev.cancel()
        # Pushing live events past the census interval triggers a rebuild
        # (3000 dead + ~1100 live crosses the 4096-push census with the
        # cancelled fraction above the rebuild threshold).
        for i in range(1200):
            sim.schedule_at(10.0 + i, fired.append, i)
        assert sim.compactions >= 1
        assert sim.pending == 1200  # every dead entry swept
        sim.run()
        assert fired == list(range(1200))

    def test_compaction_preserves_fifo_tie_break(self):
        sim = Simulator()
        fired: list = []
        dead = [sim.schedule_at(500.0, fired.append, "dead") for _ in range(3000)]
        for ev in dead:
            ev.cancel()
        # Many same-time live events scheduled across the census boundary:
        # the rebuild must keep their seq (FIFO) order.
        for i in range(1500):
            sim.schedule_at(100.0, fired.append, i)
        assert sim.compactions >= 1
        for i in range(1500, 2600):
            sim.schedule_at(100.0, fired.append, i)
        sim.run()
        assert fired == list(range(2600))

    def test_compaction_during_run_keeps_draining_new_events(self):
        """Regression: compaction mid-run must not strand the event loop.

        The loop holds a local alias to the heap list; a rebuild that
        rebinds the attribute instead of mutating in place would leave the
        loop popping a stale list while new events land in the fresh one.
        """
        sim = Simulator()
        far: list = []
        count = {"n": 0}

        def noop() -> None:
            pass

        def tick() -> None:
            count["n"] += 1
            for ev in far:
                if ev.active:
                    ev.cancel()
            far.clear()
            for k in range(8):
                far.append(sim.schedule_at(sim.now + 1000.0 + k, noop))
            if count["n"] < 2000:
                sim.schedule_at(sim.now + 1.0, tick)

        sim.schedule_at(0.0, tick)
        sim.run(until=5000.0)
        assert count["n"] == 2000
        assert sim.compactions >= 1

    def test_small_heaps_are_never_compacted(self):
        sim = Simulator()
        for i in range(200):
            sim.schedule_at(10.0 + i, lambda: None).cancel()
        for i in range(5000):
            ev = sim.schedule_at(10.0, lambda: None)
            ev.cancel()
            sim.step()
        assert sim.compactions == 0
