"""Tests for the cloud-economics subsystem (``repro.econ``).

Covers the four layers and their wiring: price models and the seeded
spot market, billing meters under both billable-quantum regimes, penalty
schedules and the cost ledger, the cost-aware scheduler/admission
surfaces, and the end-to-end determinism contract (double runs produce
bit-identical trace *and* ledger hashes, metering-only econ leaves the
job trace untouched).
"""

from __future__ import annotations

import math
from dataclasses import replace

import pytest

from repro.analysis.determinism import hash_trace
from repro.econ import (
    EMR_HOURLY_QUANTUM_S,
    BillingMeter,
    CostAwarePolicy,
    CostAwareScheduler,
    CostLedger,
    CostModel,
    EconConfig,
    OnDemandPrice,
    PenaltySchedule,
    SpotMarketConfig,
    SpotPreemptionInjector,
    SpotPriceProcess,
    attach_econ,
    promise_for_estimate,
)
from repro.core.estimators import EcEstimate
from repro.experiments.config import ExperimentSpec
from repro.experiments.runner import build_workload, run_one
from repro.experiments.sweeps import cost_frontier_sweep
from repro.metrics.report import build_report
from repro.metrics.streaming import StreamingSLAStats
from repro.metrics.tickets import ProportionalTicket
from repro.service.policy import AdmissionDecision
from repro.service.quotes import SLAQuote
from repro.sim.cluster import Cluster
from repro.sim.engine import Simulator
from repro.sim.environment import SystemConfig
from repro.sim.tracing import JobRecord, Placement
from repro.workload.distributions import Bucket

from .conftest import make_job, make_state

FAST = ExperimentSpec(
    bucket=Bucket.UNIFORM, n_batches=2, mean_jobs_per_batch=6,
    system=SystemConfig(ic_machines=4, ec_machines=2, seed=77),
)


# ----------------------------------------------------------------------
# Price models
# ----------------------------------------------------------------------
class TestOnDemandPrice:
    def test_compute_and_transfer_math(self):
        price = OnDemandPrice(rate_usd_per_hour=0.36, transfer_usd_per_gb=0.10)
        assert price.rate_usd_per_s == pytest.approx(0.0001)
        assert price.compute_usd(3600.0) == pytest.approx(0.36)
        assert price.transfer_usd(1024.0) == pytest.approx(0.10)

    def test_rejects_negative_prices(self):
        with pytest.raises(ValueError):
            OnDemandPrice(rate_usd_per_hour=-0.1)


class TestSpotMarket:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            SpotMarketConfig(base_usd_per_hour=0.0)
        with pytest.raises(ValueError):
            SpotMarketConfig(variation=-0.1)
        with pytest.raises(ValueError):
            SpotMarketConfig(bid_usd_per_hour=0.0)

    def test_preemptible_only_with_finite_bid(self):
        assert not SpotMarketConfig().preemptible
        assert SpotMarketConfig(bid_usd_per_hour=0.2).preemptible

    def test_same_seed_same_path(self):
        paths = []
        for _ in range(2):
            sim = Simulator()
            process = SpotPriceProcess(sim, SpotMarketConfig(), seed=7)
            sim.run(until=600.0)
            paths.append(list(process._prices))
        assert paths[0] == paths[1]
        assert len(paths[0]) == 11  # initial draw + 10 epochs

    def test_zero_variation_is_flat(self):
        sim = Simulator()
        market = SpotMarketConfig(variation=0.0, base_usd_per_hour=0.2)
        process = SpotPriceProcess(sim, market, seed=7)
        sim.run(until=300.0)
        assert all(p == 0.2 for p in process._prices)

    def test_price_at_uses_epoch_in_force(self):
        sim = Simulator()
        process = SpotPriceProcess(sim, SpotMarketConfig(epoch_s=60.0), seed=7)
        sim.run(until=200.0)
        assert process.price_at(0.0) == process._prices[0]
        assert process.price_at(59.9) == process._prices[0]
        assert process.price_at(60.0) == process._prices[1]
        # Before the first sample: clamp to the first epoch.
        assert process.price_at(-5.0) == process._prices[0]


# ----------------------------------------------------------------------
# Penalty schedules and the ledger
# ----------------------------------------------------------------------
class TestPenaltySchedule:
    def test_lateness_pricing(self):
        schedule = PenaltySchedule(flat_usd=1.0, late_usd_per_s=0.01, cap_usd=5.0)
        assert schedule.usd_for_lateness(-10.0) == 0.0
        assert schedule.usd_for_lateness(0.0) == 0.0
        assert schedule.usd_for_lateness(100.0) == pytest.approx(2.0)
        assert schedule.usd_for_lateness(1e6) == 5.0  # capped

    def test_validation(self):
        with pytest.raises(ValueError):
            PenaltySchedule(flat_usd=-1.0)
        with pytest.raises(ValueError):
            PenaltySchedule(flat_usd=2.0, cap_usd=1.0)

    def test_sold_promise_beats_ticket(self):
        schedule = PenaltySchedule(
            ticket=ProportionalTicket(base_s=100.0, factor=1.0)
        )
        record = JobRecord(
            job_id=1, batch_id=0, arrival_time=0.0, input_mb=10.0,
            output_mb=5.0, est_proc_time=50.0, true_proc_time=50.0,
            promise_s=10.0, completion_time=100.0,
        )
        # Sold promise of 10 s, landed at 100 s -> 90 s late.
        assert schedule.penalty_usd(record) == schedule.usd_for_lateness(90.0)
        unsold = replace(record, promise_s=None)
        # Ticket promise: 100 + 1.0 * 50 = 150 s, on time.
        assert schedule.penalty_usd(unsold) == 0.0

    def test_scaled_moves_only_the_money_axis(self):
        schedule = PenaltySchedule(flat_usd=1.0, late_usd_per_s=0.01, cap_usd=5.0)
        double = schedule.scaled(2.0)
        assert double.flat_usd == 2.0
        assert double.late_usd_per_s == 0.02
        assert double.cap_usd == 10.0
        assert double.ticket == schedule.ticket
        assert schedule.scaled(0.0).usd_for_lateness(1e9) == 0.0
        with pytest.raises(ValueError):
            schedule.scaled(-1.0)

    def test_promise_for_estimate_uses_the_estimate(self):
        ticket = ProportionalTicket(base_s=100.0, factor=2.0)
        job = make_job(proc_time=999.0)  # truth must not leak into the promise
        assert promise_for_estimate(job, 50.0, ticket) == pytest.approx(200.0)


class TestCostLedger:
    def test_derived_totals(self):
        ledger = CostLedger(
            on_demand_usd=1.0, spot_usd=2.0, transfer_usd=0.5, penalty_usd=3.0
        )
        assert ledger.compute_usd == 3.0
        assert ledger.ec_spend_usd == 3.5
        assert ledger.total_usd == 6.5
        out = ledger.as_dict()
        assert out["total_usd"] == 6.5
        assert out["ec_spend_usd"] == 3.5

    def test_hash_is_stable_and_value_sensitive(self):
        a = CostLedger(on_demand_usd=1.0)
        b = CostLedger(on_demand_usd=1.0)
        assert a.ledger_hash() == b.ledger_hash()
        b.on_demand_usd += 1e-12  # bit-level sensitivity via float hex
        assert a.ledger_hash() != b.ledger_hash()

    def test_render_mentions_the_counters(self):
        text = CostLedger(preemptions=3, violations=2, completed=9).render()
        assert "3 preemptions" in text and "2/9 late jobs" in text


# ----------------------------------------------------------------------
# Billing meters
# ----------------------------------------------------------------------
class TestBillingMeter:
    def test_per_second_quantum_bills_exact_seconds(self):
        ledger = CostLedger()
        meter = BillingMeter(ledger, OnDemandPrice(rate_usd_per_hour=3.6))
        meter.bill_interval(10.0, 130.0)
        assert ledger.billed_quantums == 120
        assert ledger.on_demand_usd == pytest.approx(0.12)

    def test_emr_hourly_quantum_rounds_up(self):
        ledger = CostLedger()
        meter = BillingMeter(
            ledger, OnDemandPrice(rate_usd_per_hour=0.34),
            quantum_s=EMR_HOURLY_QUANTUM_S,
        )
        meter.bill_interval(0.0, 61.0)  # one minute of use, one hour billed
        assert ledger.billed_quantums == 1
        assert ledger.on_demand_usd == pytest.approx(0.34)
        meter.bill_interval(0.0, 3601.0)  # just over an hour -> two hours
        assert ledger.billed_quantums == 3

    def test_exact_quantum_boundary_is_not_double_billed(self):
        ledger = CostLedger()
        meter = BillingMeter(ledger, OnDemandPrice(), quantum_s=3600.0)
        meter.bill_interval(0.0, 3600.0)
        assert ledger.billed_quantums == 1

    def test_empty_interval_bills_nothing(self):
        ledger = CostLedger()
        meter = BillingMeter(ledger, OnDemandPrice())
        assert meter.bill_interval(5.0, 5.0) == 0.0
        assert ledger.billed_quantums == 0

    def test_spot_interval_prices_per_quantum(self):
        sim = Simulator()
        market = SpotMarketConfig(variation=0.0, base_usd_per_hour=0.36)
        process = SpotPriceProcess(sim, market, seed=1)
        ledger = CostLedger()
        meter = BillingMeter(
            ledger, OnDemandPrice(), quantum_s=1.0, spot=process
        )
        meter.bill_interval(0.0, 100.0)
        assert ledger.spot_usd == pytest.approx(100.0 * 0.36 / 3600.0)
        assert ledger.on_demand_usd == 0.0

    def test_busy_mode_bills_only_completed_ec_records(self):
        ledger = CostLedger()
        meter = BillingMeter(ledger, OnDemandPrice(rate_usd_per_hour=3.6))
        ec = JobRecord(
            job_id=1, batch_id=0, arrival_time=0.0, input_mb=1.0,
            output_mb=1.0, est_proc_time=10.0, true_proc_time=10.0,
            placement=Placement.EC, exec_start=100.0, exec_end=160.0,
        )
        ic = replace(ec, job_id=2, placement=Placement.IC)
        meter.on_record_complete(ec)
        meter.on_record_complete(ic)
        assert ledger.billed_quantums == 60  # the EC execution only

    def test_pool_mode_rents_the_whole_pool(self):
        sim = Simulator()
        cluster = Cluster(sim, "ec", 2)
        ledger = CostLedger()
        meter = BillingMeter(
            ledger, OnDemandPrice(rate_usd_per_hour=3.6), mode="pool"
        )
        meter.watch(cluster)
        sim.run(until=100.0)
        cluster.add_machine()
        sim.run(until=200.0)
        meter.close_all(200.0)
        # 2 machines x 200 s + 1 machine x 100 s = 500 machine-seconds.
        assert ledger.on_demand_usd == pytest.approx(0.5)
        assert not meter._sessions

    def test_validation(self):
        with pytest.raises(ValueError):
            BillingMeter(CostLedger(), OnDemandPrice(), quantum_s=0.0)
        with pytest.raises(ValueError):
            BillingMeter(CostLedger(), OnDemandPrice(), mode="hourly")


# ----------------------------------------------------------------------
# Cluster preemption mechanics
# ----------------------------------------------------------------------
def _submit_tracking(cluster, item, standard_time, done):
    cluster.submit(item, standard_time, lambda it, m: done.append((it, cluster.sim.now)))


class TestClusterPreemption:
    def test_preempt_requeues_and_restarts_from_scratch(self):
        sim = Simulator()
        cluster = Cluster(sim, "ec", 1)
        done: list = []
        _submit_tracking(cluster, "a", 100.0, done)
        sim.run(until=40.0)
        interrupted = cluster.preempt_machine(cluster.machines[0])
        assert interrupted == ("a", 40.0)
        assert cluster.jobs_preempted == 1
        # Requeued to the front and restarted immediately on the same
        # (still online) machine: full 100 s from t=40.
        sim.run(until=1000.0)
        assert done == [("a", 140.0)]

    def test_preempt_idle_machine_is_a_noop(self):
        sim = Simulator()
        cluster = Cluster(sim, "ec", 1)
        assert cluster.preempt_machine(cluster.machines[0]) is None
        assert cluster.jobs_preempted == 0

    def test_offline_machine_is_skipped_by_dispatch(self):
        sim = Simulator()
        cluster = Cluster(sim, "ec", 1)
        cluster.take_offline(cluster.machines[0])
        done: list = []
        _submit_tracking(cluster, "a", 10.0, done)
        sim.run(until=100.0)
        assert done == [] and cluster.queue_length == 1
        cluster.bring_online(cluster.machines[0])
        sim.run(until=200.0)
        assert done == [("a", 110.0)]

    def test_preempted_draining_machine_retires_immediately(self):
        sim = Simulator()
        cluster = Cluster(sim, "ec", 2)
        done: list = []
        _submit_tracking(cluster, "a", 100.0, done)
        _submit_tracking(cluster, "b", 100.0, done)
        removed: list = []
        cluster.on_machine_removed = removed.append
        sim.run(until=10.0)
        assert cluster.retire_machine()  # both busy -> marks one draining
        victim = next(iter(cluster._draining))
        cluster.preempt_machine(victim)
        assert victim not in cluster.machines
        assert removed == [victim]
        sim.run(until=1000.0)
        assert len(done) == 2  # the preempted job reran on the survivor


class TestSpotPreemptionInjector:
    def _cluster_with_job(self):
        sim = Simulator()
        cluster = Cluster(sim, "ec", 2)
        done: list = []
        _submit_tracking(cluster, "a", 100.0, done)
        return sim, cluster, done

    def test_crossing_suspends_and_recovery_resumes(self):
        sim, cluster, done = self._cluster_with_job()
        # Huge epoch: the process's own ticks stay out of the way, the
        # test drives the crossings by hand.
        process = SpotPriceProcess(
            sim, SpotMarketConfig(variation=0.0, epoch_s=1e9), seed=1
        )
        injector = SpotPreemptionInjector(
            sim, cluster, process, bid_usd_per_hour=0.2
        )
        sim.run(until=10.0)
        injector._on_price(0.5)  # market above bid
        assert injector.preemptions == 1
        assert injector.lost_work_s == pytest.approx(10.0)
        assert cluster.offline_machines == 2
        sim.run(until=500.0)
        assert done == []  # nothing runs while reclaimed
        injector._on_price(0.1)  # market back under bid
        assert cluster.offline_machines == 0
        sim.run(until=1000.0)
        assert done and done[0][1] == pytest.approx(600.0)

    def test_repeated_high_prices_fire_once(self):
        sim, cluster, _ = self._cluster_with_job()
        process = SpotPriceProcess(
            sim, SpotMarketConfig(variation=0.0, epoch_s=1e9), seed=1
        )
        injector = SpotPreemptionInjector(sim, cluster, process, bid_usd_per_hour=0.2)
        sim.run(until=10.0)
        injector._on_price(0.5)
        injector._on_price(0.6)  # still reclaimed: no second sweep
        assert injector.reclaim_events == 1
        assert injector.preemptions == 1


# ----------------------------------------------------------------------
# Cost-aware placement and admission
# ----------------------------------------------------------------------
class _FixedEstimator:
    """Estimator stub with hand-set finish times."""

    def __init__(self, est_proc_s, ic_completion, ec_completion):
        self._est = est_proc_s
        self._ic = ic_completion
        self._ec = ec_completion

    def est_proc_time(self, job):
        return self._est

    def ft_ic(self, job, state, est_proc=None):
        return self._ic

    def ft_ec(self, job, state, est_proc=None):
        return EcEstimate(
            upload_end=10.0, exec_start=10.0,
            exec_end=self._ec - 5.0, completion=self._ec,
        )


class TestCostAwareScheduler:
    def _model(self):
        return CostModel(
            on_demand=OnDemandPrice(rate_usd_per_hour=0.36,
                                    transfer_usd_per_gb=0.0),
            penalty=PenaltySchedule(
                flat_usd=5.0, late_usd_per_s=0.01, cap_usd=50.0,
                ticket=ProportionalTicket(base_s=60.0, factor=1.0),
            ),
        )

    def test_bursts_when_penalty_saved_pays_the_invoice(self):
        # Promise 60 + 100 = 160 s; IC lands 400 s late, EC on time.
        estimator = _FixedEstimator(100.0, 560.0, 150.0)
        scheduler = CostAwareScheduler(estimator, cost_model=self._model())
        plan = scheduler.plan([make_job()], make_state())
        assert [d.placement for d in plan.decisions] == [Placement.EC]

    def test_stays_local_when_both_on_time(self):
        estimator = _FixedEstimator(100.0, 150.0, 120.0)
        scheduler = CostAwareScheduler(estimator, cost_model=self._model())
        plan = scheduler.plan([make_job()], make_state())
        assert [d.placement for d in plan.decisions] == [Placement.IC]

    def test_stays_local_when_ec_is_late_too(self):
        # Both placements blow the cap: no penalty is avoided by paying.
        estimator = _FixedEstimator(100.0, 99000.0, 98000.0)
        scheduler = CostAwareScheduler(estimator, cost_model=self._model())
        plan = scheduler.plan([make_job()], make_state())
        assert [d.placement for d in plan.decisions] == [Placement.IC]

    def test_registered_as_fifth_scheduler(self):
        trace = run_one("CostAware", FAST)
        assert trace.records
        assert all(r.completed for r in trace.records)


class TestCostAwarePolicy:
    def _quote(self, slack_s):
        promise = 100.0
        return SLAQuote(
            job_id=1, sub_id=1, now=0.0, est_proc_s=50.0,
            est_ic_completion=90.0, est_ec_completion=95.0,
            est_completion=promise - slack_s, promise_s=promise,
        )

    def test_rejects_guaranteed_loss(self):
        policy = CostAwarePolicy(
            penalty=PenaltySchedule(flat_usd=1.0, late_usd_per_s=0.01)
        )
        result = policy.admit(self._quote(slack_s=-50.0), 0, 0.0)
        assert result.decision is AdmissionDecision.REJECT
        assert result.reason == "expected_penalty"

    def test_accepts_within_budget(self):
        policy = CostAwarePolicy(
            penalty=PenaltySchedule(flat_usd=1.0, late_usd_per_s=0.01),
            max_expected_penalty_usd=5.0,
        )
        result = policy.admit(self._quote(slack_s=-50.0), 0, 0.0)
        assert result.admitted
        result = policy.admit(self._quote(slack_s=20.0), 0, 0.0)
        assert result.decision is AdmissionDecision.ACCEPT

    def test_standard_ladder_still_runs_first(self):
        policy = CostAwarePolicy(max_in_system=1)
        result = policy.admit(self._quote(slack_s=20.0), in_system=5,
                              upload_backlog_mb=0.0)
        assert result.reason == "in_system"

    def test_validation(self):
        with pytest.raises(ValueError):
            CostAwarePolicy(max_expected_penalty_usd=-1.0)
        assert math.isinf(
            CostAwarePolicy(max_expected_penalty_usd=math.inf)
            .max_expected_penalty_usd
        )


# ----------------------------------------------------------------------
# End-to-end wiring and determinism
# ----------------------------------------------------------------------
def _run_with_econ(config: EconConfig, stats=None):
    captured = {}

    def hook(env):
        captured["runtime"] = attach_econ(env, config, stats=stats)

    trace = run_one("Op", FAST, env_hook=hook)
    return trace, captured["runtime"]


class TestAttachEcon:
    def test_metering_only_leaves_trace_untouched(self):
        bare = run_one("Op", FAST)
        metered, runtime = _run_with_econ(EconConfig(spot=SpotMarketConfig()))
        assert hash_trace(bare) == hash_trace(metered)
        assert "econ" not in bare.metadata
        econ = metered.metadata["econ"]
        assert econ["spot"] is True and econ["spot_preemptible"] is False
        assert econ["spot_usd"] > 0.0
        assert runtime.ledger.completed == len(metered.records)

    def test_double_run_identical_ledgers(self):
        config = EconConfig(
            spot=SpotMarketConfig(bid_usd_per_hour=0.13, variation=0.4)
        )
        trace_a, runtime_a = _run_with_econ(config)
        trace_b, runtime_b = _run_with_econ(config)
        assert hash_trace(trace_a) == hash_trace(trace_b)
        assert runtime_a.ledger.ledger_hash() == runtime_b.ledger.ledger_hash()
        assert trace_a.metadata["econ"] == trace_b.metadata["econ"]

    def test_double_attach_raises(self):
        def hook(env):
            attach_econ(env)
            with pytest.raises(RuntimeError, match="already attached"):
                attach_econ(env)

        run_one("Op", FAST, env_hook=hook)

    def test_penalties_feed_streaming_stats(self):
        stats = StreamingSLAStats(reservoir_seed=1)
        schedule = PenaltySchedule(
            flat_usd=1.0, late_usd_per_s=0.01,
            ticket=ProportionalTicket(base_s=1.0, factor=0.01),  # always late
        )
        _, runtime = _run_with_econ(EconConfig(penalty=schedule), stats=stats)
        assert runtime.ledger.violations > 0
        assert stats.penalties_accrued == runtime.ledger.violations
        assert stats.penalty_usd == pytest.approx(runtime.ledger.penalty_usd)
        assert "SLA penalties" in stats.render()

    def test_cost_lands_in_comparison_report(self):
        trace, _ = _run_with_econ(EconConfig())
        bare = run_one("Greedy", FAST)
        comparison = build_report({"Op": trace, "Greedy": bare})
        row = comparison.reports["Op"].as_row()
        assert row["cost_usd"] == round(trace.metadata["econ"]["total_usd"], 2)
        assert comparison.reports["Greedy"].total_cost_usd is None
        assert "cost_usd" in comparison.render()

    def test_pool_billing_covers_rented_time(self):
        config = EconConfig(billing="pool")
        trace, runtime = _run_with_econ(config)
        rate = config.on_demand.rate_usd_per_s
        # Rental invoices busy *and* idle machine time, so it dominates
        # the busy-time integral the trace records.
        assert runtime.ledger.on_demand_usd >= trace.ec_busy_time * rate - 1e-9
        assert runtime.ledger.billed_quantums > 0


class TestCostFrontier:
    def test_ec_spend_weakly_monotone_in_tightness(self):
        result = cost_frontier_sweep(FAST, tightness=(0.0, 1.0, 4.0))
        assert result.ec_spend_usd == sorted(result.ec_spend_usd)
        assert result.ec_spend_usd[0] == 0.0  # free violations: never burst
        assert "tightness" in result.render()
