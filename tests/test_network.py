"""Fluid-flow link tests: water-filling, byte conservation, capacity changes."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.bandwidth import DiurnalBandwidthProfile, TimeOfDayBandwidthEstimator
from repro.sim.engine import Simulator
from repro.sim.network import CapacityProcess, FluidLink, ProbeService, waterfill


def flat_profile(mbps: float = 4.0) -> DiurnalBandwidthProfile:
    """Constant-capacity profile (no diurnal shape) for exact arithmetic."""
    return DiurnalBandwidthProfile(
        base_mbps=mbps, daily_amplitude=0.0, half_daily_amplitude=0.0
    )


def make_link(mbps: float = 4.0, variation: float = 0.0, per_thread: float = 1.0):
    sim = Simulator()
    cap = CapacityProcess(
        sim, flat_profile(mbps), np.random.default_rng(0), variation=variation
    )
    return sim, FluidLink(sim, cap, per_thread_mbps=per_thread)


class TestWaterfill:
    def test_single_flow_gets_min_of_cap_and_capacity(self):
        assert waterfill(10.0, np.array([4.0])) == pytest.approx([4.0])
        assert waterfill(3.0, np.array([4.0])) == pytest.approx([3.0])

    def test_equal_split_when_uncapped(self):
        rates = waterfill(9.0, np.array([100.0, 100.0, 100.0]))
        assert rates == pytest.approx([3.0, 3.0, 3.0])

    def test_capped_flow_releases_capacity(self):
        rates = waterfill(10.0, np.array([1.0, 100.0]))
        assert rates == pytest.approx([1.0, 9.0])

    def test_empty(self):
        assert len(waterfill(5.0, np.array([]))) == 0

    def test_zero_capacity(self):
        assert waterfill(0.0, np.array([2.0, 3.0])) == pytest.approx([0.0, 0.0])

    @given(
        st.floats(min_value=0.01, max_value=1e3),
        st.lists(st.floats(min_value=0.01, max_value=1e3), min_size=1, max_size=20),
    )
    @settings(max_examples=200, deadline=None)
    def test_properties(self, capacity, caps):
        caps = np.array(caps)
        rates = waterfill(capacity, caps)
        # Never exceed individual caps or total capacity.
        assert np.all(rates <= caps + 1e-9)
        assert rates.sum() <= capacity + 1e-9
        # Work-conserving: either the link or every flow is saturated.
        if caps.sum() >= capacity:
            assert rates.sum() == pytest.approx(capacity)
        else:
            assert rates == pytest.approx(caps)
        # Max-min fairness: any flow below its cap gets at least as much as
        # every other flow (no one is starved while another feasibly gets more).
        below = rates < caps - 1e-9
        if below.any():
            assert rates[below].min() >= rates.max() - 1e-9


class TestFluidLink:
    def test_single_transfer_duration(self):
        sim, link = make_link(mbps=4.0, per_thread=1.0)
        done = []
        link.start_transfer(8.0, threads=2, on_complete=lambda t: done.append(sim.now))
        sim.run(until=100.0)
        # cap = 2 threads * 1.0 = 2 MB/s although the link has 4 -> 4s.
        assert done == [pytest.approx(4.0)]

    def test_link_limited_transfer(self):
        sim, link = make_link(mbps=2.0, per_thread=1.0)
        done = []
        link.start_transfer(8.0, threads=8, on_complete=lambda t: done.append(sim.now))
        sim.run(until=100.0)
        assert done == [pytest.approx(4.0)]

    def test_two_transfers_share_fairly(self):
        sim, link = make_link(mbps=2.0, per_thread=10.0)
        done = {}
        link.start_transfer(4.0, 1, lambda t: done.setdefault("a", sim.now), label="a")
        link.start_transfer(4.0, 1, lambda t: done.setdefault("b", sim.now), label="b")
        sim.run(until=100.0)
        # Each gets 1 MB/s while both active -> both finish at 4s.
        assert done["a"] == pytest.approx(4.0)
        assert done["b"] == pytest.approx(4.0)

    def test_departure_speeds_up_remaining(self):
        sim, link = make_link(mbps=2.0, per_thread=10.0)
        done = {}
        link.start_transfer(2.0, 1, lambda t: done.setdefault("small", sim.now))
        link.start_transfer(6.0, 1, lambda t: done.setdefault("big", sim.now))
        sim.run(until=100.0)
        # Shared 1+1 until small done at t=2 (2MB); big then has 4MB left
        # at 2 MB/s -> finishes at t=4.
        assert done["small"] == pytest.approx(2.0)
        assert done["big"] == pytest.approx(4.0)

    def test_late_arrival_shares_remaining(self):
        sim, link = make_link(mbps=2.0, per_thread=10.0)
        done = {}
        link.start_transfer(6.0, 1, lambda t: done.setdefault("first", sim.now))
        sim.schedule(
            1.0,
            lambda: link.start_transfer(
                2.0, 1, lambda t: done.setdefault("second", sim.now)
            ),
        )
        sim.run(until=100.0)
        # first: 2MB alone by t=1; then 1 MB/s each. second finishes 2MB at
        # t=3; first has 4-2=2MB left at t=3, full speed -> t=4.
        assert done["second"] == pytest.approx(3.0)
        assert done["first"] == pytest.approx(4.0)

    def test_bytes_conserved(self):
        sim, link = make_link(mbps=3.0, per_thread=1.0)
        sizes = [5.0, 2.5, 7.75, 1.2]
        remaining = set(range(len(sizes)))
        for i, s in enumerate(sizes):
            link.start_transfer(s, 2, lambda t, i=i: remaining.discard(i))
        sim.run(until=1000.0)
        assert not remaining
        assert link.total_mb_delivered == pytest.approx(sum(sizes))

    def test_transfer_records_timing_and_throughput(self):
        sim, link = make_link(mbps=4.0, per_thread=1.0)
        captured = []
        link.start_transfer(6.0, 2, captured.append)
        sim.run(until=100.0)
        (t,) = captured
        assert t.start_time == 0.0
        assert t.end_time == pytest.approx(3.0)
        assert t.achieved_mbps == pytest.approx(2.0)
        assert t.aggregate_mbps == pytest.approx(2.0)

    def test_aggregate_throughput_under_sharing(self):
        sim, link = make_link(mbps=2.0, per_thread=10.0)
        captured = []
        link.start_transfer(4.0, 1, captured.append, label="a")
        link.start_transfer(4.0, 1, captured.append, label="b")
        sim.run(until=100.0)
        for t in captured:
            # Own rate was 1 MB/s but the pipe carried 2 MB/s throughout.
            assert t.achieved_mbps == pytest.approx(1.0)
            assert t.aggregate_mbps == pytest.approx(2.0)

    def test_invalid_transfer_args(self):
        sim, link = make_link()
        with pytest.raises(ValueError):
            link.start_transfer(0.0, 1, lambda t: None)
        with pytest.raises(ValueError):
            link.start_transfer(5.0, 0, lambda t: None)

    def test_capacity_change_mid_transfer(self):
        """Halving capacity mid-flight doubles the remaining duration."""
        sim = Simulator()
        profile = flat_profile(2.0)
        cap = CapacityProcess(sim, profile, np.random.default_rng(0), variation=0.0)
        link = FluidLink(sim, cap, per_thread_mbps=10.0)
        done = []
        link.start_transfer(8.0, 1, lambda t: done.append(sim.now))
        # Force a capacity drop at t=2 (4 MB moved, 4 left at 1 MB/s).
        sim.schedule(2.0, cap.set_capacity, 1.0)
        sim.run(until=18.0)  # before the 20s epoch restores the profile
        assert done == [pytest.approx(6.0)]

    @given(
        st.lists(st.floats(min_value=0.5, max_value=50.0), min_size=1, max_size=12),
        st.floats(min_value=0.0, max_value=0.8),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_all_transfers_complete_and_conserve_bytes(self, sizes, variation, seed):
        """Under arbitrary stochastic capacity, the fluid model loses nothing."""
        sim = Simulator()
        cap = CapacityProcess(
            sim, flat_profile(3.0), np.random.default_rng(seed),
            variation=variation, epoch_s=5.0,
        )
        link = FluidLink(sim, cap, per_thread_mbps=1.0)
        finished = []
        for i, s in enumerate(sizes):
            sim.schedule(
                i * 0.7,
                lambda s=s: link.start_transfer(s, 2, lambda t: finished.append(t)),
            )
        sim.run(until=10000.0)
        assert len(finished) == len(sizes)
        assert link.total_mb_delivered == pytest.approx(sum(sizes), rel=1e-6)
        for t in finished:
            assert t.end_time is not None and t.end_time >= t.start_time
            assert t.remaining_mb == 0.0


class TestCapacityProcess:
    def test_zero_variation_tracks_profile(self):
        sim = Simulator()
        profile = DiurnalBandwidthProfile(base_mbps=4.0)
        cap = CapacityProcess(sim, profile, np.random.default_rng(1), variation=0.0)
        assert cap.current_mbps == pytest.approx(profile.mean_at(0.0))
        sim.run(until=3600.0)
        assert cap.current_mbps == pytest.approx(profile.mean_at(3600.0), rel=0.01)

    def test_variation_stays_above_floor(self):
        sim = Simulator()
        cap = CapacityProcess(
            sim, flat_profile(4.0), np.random.default_rng(2), variation=1.5, epoch_s=1.0
        )
        lows = []
        for _ in range(500):
            sim.step()
            lows.append(cap.current_mbps)
        assert min(lows) >= 0.05 * 4.0 - 1e-9

    def test_mean_preserving_noise(self):
        sim = Simulator()
        cap = CapacityProcess(
            sim, flat_profile(4.0), np.random.default_rng(3), variation=0.4, epoch_s=1.0
        )
        samples = []
        for _ in range(4000):
            sim.step()
            samples.append(cap.current_mbps)
        assert np.mean(samples) == pytest.approx(4.0, rel=0.05)

    def test_invalid_args(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            CapacityProcess(sim, flat_profile(), np.random.default_rng(0), variation=-1)
        with pytest.raises(ValueError):
            CapacityProcess(sim, flat_profile(), np.random.default_rng(0), epoch_s=0)


class TestProbeService:
    def test_probes_feed_estimator(self):
        sim, link = make_link(mbps=4.0, per_thread=10.0)
        est = TimeOfDayBandwidthEstimator(prior_mbps=1.0)
        probe = ProbeService(sim, link, est, interval_s=60.0, probe_mb=1.0)
        sim.run(until=600.0)
        assert probe.n_probes >= 9
        # With an idle link the probe measures true capacity.
        assert est.estimate(0.0) == pytest.approx(4.0, rel=0.05)

    def test_probe_does_not_stack(self):
        """A slow probe skips firings rather than stacking transfers."""
        sim, link = make_link(mbps=0.001, per_thread=10.0)
        est = TimeOfDayBandwidthEstimator(prior_mbps=1.0)
        ProbeService(sim, link, est, interval_s=10.0, probe_mb=1.0)
        sim.run(until=200.0)
        assert len(link.active) <= 1

    def test_invalid_interval(self):
        sim, link = make_link()
        with pytest.raises(ValueError):
            ProbeService(sim, link, TimeOfDayBandwidthEstimator(), interval_s=0.0)
