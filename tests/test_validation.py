"""Trace-audit tests, including randomized end-to-end property checks."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import Placement
from repro.experiments.runner import make_scheduler
from repro.sim.environment import CloudBurstEnvironment, SystemConfig
from repro.sim.faults import OutageInjector, OutageWindow
from repro.sim.validation import TraceInvariantError, validate_trace
from repro.workload.distributions import Bucket
from repro.workload.generator import WorkloadConfig, WorkloadGenerator

from tests.test_metrics import make_trace, record


class TestAuditChecks:
    def clean_trace(self):
        r1 = record(1, 50.0, proc=50.0)
        r1.machine = "ic-0"
        r2 = record(2, 100.0, proc=50.0)
        r2.machine = "ic-0"
        trace = make_trace([r1, r2], ic_busy=100.0, ic_m=1, ec_m=1)
        return trace

    def test_clean_trace_passes(self):
        assert validate_trace(self.clean_trace()) == []

    def test_detects_machine_overlap(self):
        r1 = record(1, 60.0, proc=60.0)     # exec [0, 60] on ic-0
        r2 = record(2, 90.0, proc=60.0)     # exec [30, 90] on ic-0 -> overlap
        r1.machine = r2.machine = "ic-0"
        trace = make_trace([r1, r2], ic_busy=120.0, ic_m=1)
        problems = validate_trace(trace, raise_on_failure=False)
        assert any("overlaps" in p for p in problems)
        with pytest.raises(TraceInvariantError):
            validate_trace(trace)

    def test_detects_missing_ec_stage(self):
        r = record(1, 100.0, placement=Placement.EC)
        r.machine = "ec-0"
        trace = make_trace([r], ec_busy=10.0)
        problems = validate_trace(trace, raise_on_failure=False)
        assert any("missing stages" in p for p in problems)

    def test_detects_ic_job_with_transfer(self):
        r = record(1, 100.0)
        r.upload_start = 1.0
        r.upload_end = 2.0
        r.machine = "ic-0"
        trace = make_trace([r], ic_busy=10.0)
        problems = validate_trace(trace, raise_on_failure=False)
        assert any("transfer stage" in p for p in problems)

    def test_detects_overfull_busy_time(self):
        r = record(1, 100.0, proc=10.0)
        r.machine = "ic-0"
        trace = make_trace([r], ic_busy=1e6, ic_m=1)
        problems = validate_trace(trace, raise_on_failure=False)
        assert any("exceeds pool capacity" in p for p in problems)

    def test_detects_incomplete_job(self):
        r = record(1, 100.0)
        r.machine = "ic-0"
        r.completion_time = None
        trace = make_trace([record(2, 50.0), r], ic_busy=10.0)
        problems = validate_trace(trace, raise_on_failure=False)
        assert any("never completed" in p for p in problems)


class TestEndToEndAudit:
    """Randomised full runs must always satisfy every invariant."""

    @given(
        scheduler=st.sampled_from(["ICOnly", "Greedy", "Op", "OpSIBS"]),
        bucket=st.sampled_from(list(Bucket)),
        seed=st.integers(min_value=0, max_value=10_000),
        variation=st.floats(min_value=0.0, max_value=0.9),
    )
    @settings(max_examples=15, deadline=None)
    def test_random_runs_are_clean(self, scheduler, bucket, seed, variation):
        gen = WorkloadGenerator(bucket=bucket, seed=seed)
        batches = gen.generate(
            WorkloadConfig(bucket=bucket, n_batches=2, mean_jobs_per_batch=5,
                           seed=seed)
        )
        config = SystemConfig(
            ic_machines=3, ec_machines=2, seed=seed + 1,
            bandwidth_variation=variation,
        )
        env = CloudBurstEnvironment(config)
        env.pretrain_qrsm(*gen.sample_training_set(120))
        trace = env.run(batches, make_scheduler(scheduler, env))
        assert validate_trace(trace) == []

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        outage_start=st.floats(min_value=30.0, max_value=400.0),
        outage_len=st.floats(min_value=30.0, max_value=300.0),
    )
    @settings(max_examples=10, deadline=None)
    def test_runs_survive_random_outages(self, seed, outage_start, outage_len):
        """Failure injection: hard outages never wedge or corrupt a run."""
        gen = WorkloadGenerator(bucket=Bucket.LARGE, seed=seed)
        batches = gen.generate(
            WorkloadConfig(bucket=Bucket.LARGE, n_batches=2,
                           mean_jobs_per_batch=5, seed=seed)
        )
        env = CloudBurstEnvironment(
            SystemConfig(ic_machines=3, ec_machines=2, seed=seed + 7)
        )
        env.pretrain_qrsm(*gen.sample_training_set(120))
        OutageInjector(
            env.sim, [env.up_capacity, env.down_capacity],
            [OutageWindow(start_s=outage_start, duration_s=outage_len)],
        )
        trace = env.run(batches, make_scheduler("Op", env))
        assert validate_trace(trace) == []

    def test_rescheduling_runs_audit_clean(self):
        gen = WorkloadGenerator(bucket=Bucket.UNIFORM, seed=4)
        batches = gen.generate(
            WorkloadConfig(n_batches=2, mean_jobs_per_batch=6, seed=4)
        )
        env = CloudBurstEnvironment(SystemConfig(
            ic_machines=3, ec_machines=1, seed=8,
            enable_ic_pull=True, enable_ec_push=True,
            up_base_mbps=1.0, down_base_mbps=1.5,
        ))
        env.pretrain_qrsm(*gen.sample_training_set(120))
        trace = env.run(batches, make_scheduler("Greedy", env))
        assert validate_trace(trace) == []


class TestKitchenSink:
    def test_all_features_together(self):
        """Everything at once: SIBS scheduler, heterogeneous IC, autoscaled
        EC, rescheduling strategies, Poisson arrivals, and a mid-run
        outage — the run must complete and audit clean."""
        from repro.core.bandwidth_splitting import SizeIntervalSplittingScheduler
        from repro.sim.autoscale import ECAutoScaler

        gen = WorkloadGenerator(bucket=Bucket.LARGE, seed=13)
        batches = gen.generate(
            WorkloadConfig(bucket=Bucket.LARGE, n_batches=3,
                           mean_jobs_per_batch=8, seed=13,
                           arrival_process="poisson")
        )
        env = CloudBurstEnvironment(SystemConfig(
            ic_machines=4, ec_machines=2, seed=14,
            ic_machine_speeds=(0.8, 1.0, 1.2, 1.0),
            enable_ic_pull=True, enable_ec_push=True,
        ))
        env.pretrain_qrsm(*gen.sample_training_set(150))
        ECAutoScaler(env.sim, env.ec, min_instances=1, max_instances=4,
                     interval_s=45.0)
        OutageInjector(
            env.sim, [env.up_capacity, env.down_capacity],
            [OutageWindow(start_s=120.0, duration_s=90.0)],
        )
        trace = env.run(batches, SizeIntervalSplittingScheduler(env.estimator))
        assert all(r.completed for r in trace.records)
        assert validate_trace(trace) == []
